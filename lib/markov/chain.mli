(** Finite Markov chains with sparse row-stochastic matrices.

    Provides the generic machinery behind the paper's analyses: ergodicity
    checks, stationary distributions by power iteration, and step-distance
    diagnostics. *)

type t

val size : t -> int

val row : t -> int -> (int * float) array
(** Sparse successor row (column, probability), sorted by column. *)

val of_weighted_edges : size:int -> (int * int * float) list -> t
(** Build from weighted edges; duplicate edges accumulate, rows normalize.
    Weightless rows become absorbing self-loops. *)

val of_rows : size:int -> (int -> (int * float) list) -> t
(** Build from a per-row generator of (successor, weight) lists. *)

val successors : t -> int -> int list

val transition_probability : t -> int -> int -> float

val is_irreducible : t -> bool
(** The support digraph is strongly connected. *)

val period : t -> int
(** Period of the chain (1 = aperiodic). Meaningful for irreducible
    chains. *)

val is_aperiodic : t -> bool
val is_ergodic : t -> bool

val step : t -> float array -> float array
(** One distribution step p -> pP. *)

val step_n : t -> float array -> int -> float array

val l1_distance : float array -> float array -> float
val tv_distance : float array -> float array -> float

val uniform_distribution : int -> float array
val point_distribution : size:int -> int -> float array

type stationary_result = {
  distribution : float array;
  iterations : int;
  residual : float;
}

val stationary :
  ?tolerance:float ->
  ?max_iterations:int ->
  ?initial:float array ->
  t ->
  stationary_result
(** Stationary distribution by lazy power iteration ((I+P)/2, so periodic
    chains also converge). *)

val expected_hitting_time :
  ?tolerance:float -> ?max_sweeps:int -> t -> source:int -> target:int -> float
(** Expected steps to first reach [target] from [source] (Gauss-Seidel);
    [nan] on non-convergence, [infinity] if unreachable mass exists. *)

val sample_step : t -> uniform:(unit -> float) -> int -> int
(** Draw the next state using an external uniform(0,1) source. *)
