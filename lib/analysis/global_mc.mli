(** The exact global Markov chain on membership graphs for small systems
    (paper, section 7.1), used to verify Lemmas 7.1/7.5/7.6 mechanically. *)

type params = {
  n : int;
  view_size : int;
  lower_threshold : int;
  loss : float;
}

type state = int list list
(** Per node, the sorted multiset of ids in its view. *)

val transitions : params -> state -> (state * float) list
(** All successors with probabilities (summing to 1); transitions into
    partitioned states are redirected to self-loops. *)

val is_weakly_connected_state : n:int -> state -> bool

type result = {
  params : params;
  states : state array;
  chain : Sf_markov.Chain.t;
  stationary : float array;
  is_ergodic : bool;
  stationary_max_min_ratio : float;
      (** 1.0 means exactly uniform over reachable states (Lemma 7.5) *)
  edge_probability : float array array;
      (** P(v in u.lv) in the steady state *)
  mean_entries : float;
  self_edge_fraction : float;
  parallel_fraction : float;
}

exception Too_many_states of int

val explore : ?max_states:int -> params -> initial:state -> result
(** Enumerate the reachable chain from [initial] by BFS, solve for its
    stationary distribution, and compute steady-state statistics.
    Raises {!Too_many_states} past [max_states] (default 500k). *)

val edge_probability_spread : result -> float
(** max/min of P(v in u.lv) over u <> v — Lemma 7.6 predicts exactly 1. *)

val multiplicity_correction : state -> float
(** prod over edges of m_uv! — the number of instance labelings folded into
    one multigraph state. *)

val labeled_uniformity_ratio : result -> float
(** max/min over states of pi(G) * multiplicity_correction(G).  Exactly 1
    when the stationary distribution is uniform over instance-labeled
    membership graphs — the exact form of Lemma 7.5 on this chain. *)
