(* Resilience experiments (RES1, RES2, RSOAK): what the self-healing
   layer (lib/resilience) buys under the loss regimes the paper leaves
   open.

   - RES1: a loss ramp 0 -> 0.4 with static thresholds vs adaptive
     retuning — the retuned system keeps its mean outdegree near the
     d_hat it was asked to hold, the static one drifts;
   - RES2: time-to-reconnect after a long partition — the supervised
     recovery path vs the manual Churn.recover_connectivity call;
   - RSOAK: a compact chaos soak (bursty loss, partition, crash wave)
     under the full policy and the Warn audit — the CI gate behind
     `make soak`.

   Every section folds its numbers into BENCH_resil.json (rewritten after
   each section, so partial invocations still leave a valid artifact). *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Properties = Sf_core.Properties
module Churn = Sf_core.Churn
module Summary = Sf_stats.Summary
module Scenario = Sf_faults.Scenario
module Loss = Sf_faults.Loss
module Injector = Sf_faults.Injector
module Invariant = Sf_check.Invariant
module Policy = Sf_resil.Policy
module Json = Sf_obs.Json

(* Each section returns its (id, payload) pair; the harness main
   accumulates them and rewrites BENCH_resil.json after every section.
   (The accumulator used to be a module-level ref — a shared-state hazard
   under sf_analyze; now the state lives in the driver.) *)
let record id json = (id, json)

(* The production solver wiring: section 6.3 re-solved for the estimated
   loss, clamped below the select_lossy domain bound. *)
let solve ~d_hat ~delta ~loss =
  let t =
    Sf_analysis.Thresholds.select_lossy ~d_hat ~delta ~loss:(Float.min loss 0.45)
  in
  (t.Sf_analysis.Thresholds.lower_threshold, t.Sf_analysis.Thresholds.view_size)

let scenario_of_string s =
  match Scenario.of_string s with
  | Ok sc -> sc
  | Error e -> Fmt.failwith "scenario %S: %s" s e

(* --- RES1: degree tracking under a loss ramp --- *)

let res1_d_hat = 30
let res1_segments = [ 0.0; 0.1; 0.2; 0.3; 0.4 ]
let res1_rounds_per_segment = 40

(* One arm of the ramp: drive the per-link loss through the segments and
   record the mean outdegree at the end of each. *)
let res1_arm ~resilience ~seed =
  let current_loss = ref 0.0 in
  let scenario =
    Scenario.make ~loss:(Loss.Per_link (fun _ _ -> !current_loss)) ()
  in
  let config = Protocol.make_config ~view_size:40 ~lower_threshold:18 in
  let n = 200 in
  let topology = Topology.regular (Sf_prng.Rng.create (seed + 1)) ~n ~out_degree:30 in
  let r =
    Runner.create ~scenario ?resilience ~seed ~n ~loss_rate:0. ~config ~topology ()
  in
  let means =
    List.map
      (fun loss ->
        current_loss := loss;
        Runner.run_rounds r res1_rounds_per_segment;
        (loss, Summary.mean (Properties.outdegree_summary r)))
      res1_segments
  in
  (r, means)

let fig_res1 () =
  Output.section "RES1"
    "Adaptive retuning holds d_hat through a loss ramp (0 -> 0.4)";
  Fmt.pr
    "n=200, s=40, dL=18 (solved for d_hat=%d at loss 0), per-link loss ramped@\n\
     through %d segments of %d rounds; adaptive arm re-solves section 6.3@\n\
     online from the Lemma 6.6 loss estimate.@." res1_d_hat
    (List.length res1_segments) res1_rounds_per_segment;
  let policy =
    Policy.make ~recover:false ~estimator_window:1000 ~smoothing:0.5 ~cooldown:5
      ~solve:(solve ~d_hat:res1_d_hat ~delta:0.01)
      ()
  in
  let r_adaptive, adaptive = res1_arm ~resilience:(Some policy) ~seed:7100 in
  let _r_static, static = res1_arm ~resilience:None ~seed:7100 in
  Output.table
    [ "loss"; "static mean degree"; "adaptive mean degree" ]
    (List.map2
       (fun (loss, ms) (_, ma) -> [ Output.f2 loss; Output.f2 ms; Output.f2 ma ])
       static adaptive);
  (match Runner.resilience_statistics r_adaptive with
  | Some rs ->
    Fmt.pr "  adaptive arm: estimate %.3f after %d windows, %d retunes@."
      rs.Runner.loss_estimate rs.Runner.estimator_windows rs.Runner.retunes
  | None -> ());
  let final l = List.assoc 0.4 l in
  let target = float_of_int res1_d_hat in
  let adaptive_err = Float.abs (final adaptive -. target) /. target in
  let static_err = Float.abs (final static -. target) /. target in
  Output.check
    (Fmt.str "adaptive mean degree at loss 0.4 within 10%% of d_hat (off by %.1f%%)"
       (100. *. adaptive_err))
    (adaptive_err <= 0.10);
  Output.check
    (Fmt.str "static thresholds drift further (off by %.1f%%)" (100. *. static_err))
    (static_err > adaptive_err);
  record "res1"
    (Json.Obj
       [
         ("d_hat", Json.Float target);
         ( "ramp",
           Json.List
             (List.map2
                (fun (loss, ms) (_, ma) ->
                  Json.Obj
                    [
                      ("loss", Json.Float loss);
                      ("static_mean_degree", Json.Float ms);
                      ("adaptive_mean_degree", Json.Float ma);
                    ])
                static adaptive) );
         ("adaptive_final_error", Json.Float adaptive_err);
         ("static_final_error", Json.Float static_err);
       ])

(* --- RES2: supervised vs manual time-to-reconnect --- *)

(* The splitting configuration from the fault tests: small views, a
   100-round two-way partition.  Both arms run the same seeds; the clock
   starts when the partition window closes (round 105). *)
let res2_window_end = 105

let res2_runner ?resilience () =
  let config = Protocol.make_config ~view_size:8 ~lower_threshold:2 in
  let n = 200 in
  let scenario = scenario_of_string "partition@5-105:2" in
  let topology = Topology.regular (Sf_prng.Rng.create 531) ~n ~out_degree:6 in
  Runner.create ~scenario ?resilience ~seed:530 ~n ~loss_rate:0.05 ~config
    ~topology ()

(* Rounds past the window close until weak connectivity, probing every
   round; [limit] caps the search. *)
let rounds_to_reconnect r ~limit =
  let rec probe k =
    if Properties.is_weakly_connected r then Some k
    else if k >= limit then None
    else begin
      Runner.run_rounds r 1;
      probe (k + 1)
    end
  in
  probe 0

let fig_res2 () =
  Output.section "RES2" "Supervised recovery vs manual rendezvous repair";
  Fmt.pr
    "n=200, s=8, dL=2, partition@5-105:2 (provably splits the overlay).@\n\
     Manual arm: run to the window close, then invoke Churn.recover_connectivity.@\n\
     Supervised arm: the resilience supervisor repairs on its own schedule.@.";
  (* Manual arm. *)
  let r_manual = res2_runner () in
  Runner.run_rounds r_manual res2_window_end;
  let manual_rounds =
    if Properties.is_weakly_connected r_manual then 0
    else
      match Churn.recover_connectivity ~max_rounds:60 r_manual with
      | Some (rounds, _rebootstraps) -> rounds
      | None -> max_int
  in
  (* Supervised arm. *)
  let policy =
    Policy.make ~retune:false ~solve:(solve ~d_hat:8 ~delta:0.01) ()
  in
  let r_sup = res2_runner ~resilience:policy () in
  Runner.run_rounds r_sup res2_window_end;
  let supervised_rounds =
    match rounds_to_reconnect r_sup ~limit:60 with
    | Some k -> k
    | None -> max_int
  in
  let attempts, recoveries =
    match Runner.resilience_statistics r_sup with
    | Some rs -> (rs.Runner.repair_attempts, rs.Runner.recoveries)
    | None -> (0, 0)
  in
  Output.table
    [ "arm"; "rounds past window close" ]
    [
      [ "manual (recover_connectivity)"; Output.i manual_rounds ];
      [ "supervised (resilience layer)"; Output.i supervised_rounds ];
    ];
  Fmt.pr "  supervisor: %d repair attempts, %d confirmed recoveries@." attempts
    recoveries;
  Output.check "both arms reconnected"
    (manual_rounds < max_int && supervised_rounds < max_int);
  Output.check "supervised reconnects at least as fast as manual"
    (supervised_rounds <= manual_rounds);
  record "res2"
    (Json.Obj
       [
         ("manual_rounds", Json.Int manual_rounds);
         ("supervised_rounds", Json.Int supervised_rounds);
         ("repair_attempts", Json.Int attempts);
         ("recoveries", Json.Int recoveries);
       ])

(* --- RSOAK: the CI soak gate --- *)

let rsoak () =
  Output.section "RSOAK" "Chaos soak under the full resilience policy";
  let scenario = scenario_of_string "ge:0.15:6;partition@60-80:2;crash@110-130:0-5" in
  Fmt.pr "scenario %s, n=96, s=16, dL=6, 200 rounds, Warn audit.@."
    (Scenario.to_string scenario);
  let policy =
    Policy.make ~estimator_window:1000 ~solve:(solve ~d_hat:10 ~delta:0.01) ()
  in
  let config = Protocol.make_config ~view_size:16 ~lower_threshold:6 in
  let n = 96 in
  let topology = Topology.regular (Sf_prng.Rng.create 7301) ~n ~out_degree:10 in
  let r =
    Runner.create ~scenario ~resilience:policy ~seed:7300 ~n ~loss_rate:0.01
      ~config ~topology ()
  in
  let stats = Invariant.audited_run ~mode:Invariant.Warn r ~rounds:200 in
  let connected = Properties.is_weakly_connected r in
  let estimate, windows, retunes, repairs, recoveries =
    match Runner.resilience_statistics r with
    | Some rs ->
      ( rs.Runner.loss_estimate,
        rs.Runner.estimator_windows,
        rs.Runner.retunes,
        rs.Runner.repair_attempts,
        rs.Runner.recoveries )
    | None -> (0., 0, 0, 0, 0)
  in
  let truth =
    match Runner.fault_statistics r with
    | Some fs when fs.Injector.judged > 0 ->
      float_of_int
        (fs.Injector.chance_drops + fs.Injector.partition_drops
       + fs.Injector.crash_drops + fs.Injector.corruptions)
      /. float_of_int fs.Injector.judged
    | Some _ | None -> 0.
  in
  let err = Float.abs (estimate -. truth) in
  Output.table
    [ "measure"; "value" ]
    [
      [ "invariant violations"; Output.i stats.Invariant.violation_count ];
      [ "weakly connected"; string_of_bool connected ];
      [ "loss estimate"; Output.f4 estimate ];
      [ "injector ground truth"; Output.f4 truth ];
      [ "estimator windows"; Output.i windows ];
      [ "retunes"; Output.i retunes ];
      [ "repair attempts"; Output.i repairs ];
      [ "recoveries"; Output.i recoveries ];
    ];
  Output.check "no invariant violations" (stats.Invariant.violation_count = 0);
  Output.check "overlay connected after the chaos" connected;
  Output.check
    (Fmt.str "estimate within 0.08 of injector truth (err %.4f)" err)
    (err <= 0.08);
  record "rsoak"
    (Json.Obj
       [
         ("violations", Json.Int stats.Invariant.violation_count);
         ("connected", Json.Bool connected);
         ("loss_estimate", Json.Float estimate);
         ("injector_truth", Json.Float truth);
         ("estimator_error", Json.Float err);
         ("retunes", Json.Int retunes);
         ("repair_attempts", Json.Int repairs);
         ("recoveries", Json.Int recoveries);
       ])
