(* Tests for the robustness extensions: non-uniform loss, session churn,
   and rumor dissemination. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Sessions = Sf_core.Sessions
module Dissemination = Sf_spread.Dissemination
module Summary = Sf_stats.Summary

let config = Protocol.make_config ~view_size:12 ~lower_threshold:4

let make_system ?(seed = 60) ?(n = 120) ?(loss = 0.) ?destination_loss () =
  let rng = Sf_prng.Rng.create (seed + 21) in
  let topology = Topology.regular rng ~n ~out_degree:4 in
  Runner.create ?destination_loss ~seed ~n ~loss_rate:loss ~config ~topology ()

(* --- Non-uniform loss --- *)

let test_destination_loss_zero_vs_one () =
  (* Messages to even nodes always dropped, to odd nodes never. *)
  let r =
    make_system ~loss:0.5
      ~destination_loss:(fun dst -> if dst mod 2 = 0 then 1. else 0.)
      ()
  in
  Runner.run_rounds r 50;
  let counters = Runner.world_counters r in
  Alcotest.(check bool) "some messages lost" true (counters.Runner.messages_lost > 0);
  Alcotest.(check bool) "some messages delivered" true (counters.Runner.receipts > 0);
  (* Nodes whose inbound drops entirely never receive. *)
  Array.iter
    (fun node ->
      if node.Protocol.node_id mod 2 = 0 then
        Alcotest.(check int)
          (Printf.sprintf "node %d received nothing" node.Protocol.node_id)
          0 node.Protocol.messages_received)
    (Runner.live_nodes r)

let test_destination_loss_statistics () =
  let r =
    make_system ~n:200 ~loss:0.05
      ~destination_loss:(fun dst -> if dst < 100 then 0.1 else 0.)
      ()
  in
  Runner.run_rounds r 300;
  let counters = Runner.world_counters r in
  let observed =
    float_of_int counters.Runner.messages_lost /. float_of_int counters.Runner.sends
  in
  (* Mean loss ~ 0.05 since half the destinations drop at 0.1 (weighted by
     how often each half is targeted, which stays near balanced). *)
  Alcotest.(check bool)
    (Printf.sprintf "observed loss %.3f near 0.05" observed)
    true
    (Float.abs (observed -. 0.05) < 0.02)

(* --- Sessions --- *)

let test_lifetime_sampling () =
  let rng = Sf_prng.Rng.create 1 in
  let mean_of lifetime =
    let s = Summary.create () in
    for _ = 1 to 40_000 do
      Summary.add s (Sessions.sample_lifetime rng lifetime)
    done;
    Summary.mean s
  in
  let exp_mean = mean_of (Sessions.Exponential 50.) in
  Alcotest.(check bool)
    (Printf.sprintf "exponential mean %.1f near 50" exp_mean)
    true
    (Float.abs (exp_mean -. 50.) < 2.);
  (* Pareto shape 2.5, minimum 30: mean = 2.5*30/1.5 = 50. *)
  let par = Sessions.Pareto { shape = 2.5; minimum = 30. } in
  Alcotest.(check bool) "analytic mean" true
    (Float.abs (Sessions.mean_lifetime par -. 50.) < 1e-9);
  let par_mean = mean_of par in
  Alcotest.(check bool)
    (Printf.sprintf "pareto mean %.1f near 50" par_mean)
    true
    (Float.abs (par_mean -. 50.) < 4.);
  (* Pareto samples never fall below the minimum. *)
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above minimum" true (Sessions.sample_lifetime rng par >= 30.)
  done

let test_session_churn_keeps_population () =
  let r = make_system ~n:150 ~loss:0.01 () in
  Runner.run_rounds r 50;
  let sessions =
    Sessions.create ~runner:r ~seed:7 ~lifetime:(Sessions.Exponential 75.)
      ~arrival_rate:2. ()
  in
  Sessions.run sessions ~rounds:150;
  let stats = Sessions.statistics sessions in
  (* Equilibrium population ~ arrival_rate * mean = 150. *)
  Alcotest.(check bool)
    (Printf.sprintf "population %d near 150" stats.Sessions.population)
    true
    (stats.Sessions.population > 75 && stats.Sessions.population < 260);
  Alcotest.(check bool) "joins happened" true (stats.Sessions.joins > 100);
  Alcotest.(check bool) "leaves happened" true (stats.Sessions.leaves > 100);
  Alcotest.(check int) "no isolated nodes (recovery on)" 0
    (List.length (Runner.isolated_nodes r));
  (* Degrees stay legal. *)
  Array.iter
    (fun node ->
      let d = Protocol.degree node in
      Alcotest.(check bool) "legal degree" true (d mod 2 = 0 && d <= 12))
    (Runner.live_nodes r)

let test_session_zero_arrivals_drains () =
  let r = make_system ~n:60 () in
  let sessions =
    Sessions.create ~recover:false ~runner:r ~seed:8
      ~lifetime:(Sessions.Exponential 20.) ~arrival_rate:0. ()
  in
  Sessions.run sessions ~rounds:200;
  (* Everyone's session expires; the driver keeps a floor of a few nodes. *)
  Alcotest.(check bool) "population drained to the floor" true
    (Runner.live_count r <= 5)

(* --- Dissemination --- *)

let test_rumor_reaches_everyone () =
  let r = make_system ~n:200 () in
  Runner.run_rounds r 80;
  let rng = Sf_prng.Rng.create 9 in
  let trace =
    Dissemination.spread r rng ~coverage_target:1.0 ~fanout:2 ~loss_rate:0. ~source:0 ()
  in
  (match trace.Dissemination.rounds_to_all with
  | Some rounds ->
    Alcotest.(check bool)
      (Printf.sprintf "full coverage in %d rounds" rounds)
      true
      (rounds <= 25)
  | None -> Alcotest.fail "rumor must reach everyone without loss");
  (* Coverage is monotone non-decreasing. *)
  let ok = ref true in
  Array.iteri
    (fun i f ->
      if i > 0 && f < trace.Dissemination.coverage.(i - 1) -. 1e-9 then ok := false)
    trace.Dissemination.coverage;
  Alcotest.(check bool) "coverage monotone" true !ok

let test_rumor_loss_slows_spread () =
  let run loss seed =
    let r = make_system ~seed ~n:200 () in
    Runner.run_rounds r 80;
    let rng = Sf_prng.Rng.create (seed + 1) in
    let trace = Dissemination.spread r rng ~fanout:2 ~loss_rate:loss ~source:0 () in
    Option.value ~default:999 trace.Dissemination.rounds_to_half
  in
  let fast = run 0. 61 in
  let slow = run 0.6 62 in
  Alcotest.(check bool)
    (Printf.sprintf "no loss %d rounds <= 60%% loss %d rounds" fast slow)
    true (fast <= slow)

let test_rumor_max_rounds_cap () =
  let r = make_system ~n:100 () in
  Runner.run_rounds r 50;
  let rng = Sf_prng.Rng.create 11 in
  (* 100% loss: the rumor never leaves the source. *)
  let trace =
    Dissemination.spread r rng ~max_rounds:10 ~fanout:2 ~loss_rate:1. ~source:0 ()
  in
  Alcotest.(check bool) "never reaches half" true (trace.Dissemination.rounds_to_half = None);
  Alcotest.(check int) "stopped at the cap" 10 (Array.length trace.Dissemination.coverage)

let suite =
  [
    Alcotest.test_case "destination loss extremes" `Quick test_destination_loss_zero_vs_one;
    Alcotest.test_case "destination loss statistics" `Quick test_destination_loss_statistics;
    Alcotest.test_case "lifetime sampling" `Quick test_lifetime_sampling;
    Alcotest.test_case "session churn equilibrium" `Quick test_session_churn_keeps_population;
    Alcotest.test_case "session drain" `Quick test_session_zero_arrivals_drains;
    Alcotest.test_case "rumor full coverage" `Quick test_rumor_reaches_everyone;
    Alcotest.test_case "rumor loss slows spread" `Quick test_rumor_loss_slows_spread;
    Alcotest.test_case "rumor round cap" `Quick test_rumor_max_rounds_cap;
  ]
