(* Point-to-point message layer with uniform i.i.d. loss (the paper's loss
   model, section 4.1) and configurable delivery latency.  Messages to nodes
   without a registered handler are counted as lost-to-crash, which is how
   the churn driver models failed nodes: the id of a dead node stays in
   views until the protocol erodes it, exactly as in section 6.5.2. *)

type 'msg t = {
  sim : Sim.t;
  rng : Sf_prng.Rng.t;
  loss_rate : float;  (* nominal/mean rate, also the uniform default *)
  (* Per-destination loss probability, overriding the uniform rate — the
     non-uniform loss regime the paper's section 4.1 mentions but does not
     analyze (e.g. nodes behind lossy last-mile links). *)
  destination_loss : (int -> float) option;
  latency : Sf_prng.Rng.t -> float;
  handlers : (int, 'msg -> unit) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable dropped_no_handler : int;
}

type statistics = {
  messages_sent : int;
  messages_delivered : int;
  messages_lost : int;
  messages_to_dead_nodes : int;
}

let default_latency rng = 0.5 +. Sf_prng.Rng.float rng
(* Uniform in [0.5, 1.5): asynchronous but loosely synchronized, matching the
   paper's assumption that nodes invoke actions at similar rates. *)

let create ?(latency = default_latency) ?destination_loss ~sim ~rng ~loss_rate () =
  if loss_rate < 0. || loss_rate > 1. then
    invalid_arg "Network.create: loss_rate must lie in [0,1]";
  {
    sim;
    rng;
    loss_rate;
    destination_loss;
    latency;
    handlers = Hashtbl.create 64;
    sent = 0;
    delivered = 0;
    lost = 0;
    dropped_no_handler = 0;
  }

let register t node handler = Hashtbl.replace t.handlers node handler

let unregister t node = Hashtbl.remove t.handlers node

let is_registered t node = Hashtbl.mem t.handlers node

let loss_rate t = t.loss_rate

let drop_probability t ~dst =
  match t.destination_loss with None -> t.loss_rate | Some f -> f dst

(* Fire-and-forget send: the sender cannot detect loss, so the loss draw
   happens here and lost messages are simply never scheduled. *)
let send t ~dst msg =
  t.sent <- t.sent + 1;
  if Sf_prng.Rng.bernoulli t.rng (drop_probability t ~dst) then t.lost <- t.lost + 1
  else
    let delay = t.latency t.rng in
    Sim.schedule t.sim ~delay (fun () ->
        match Hashtbl.find_opt t.handlers dst with
        | None -> t.dropped_no_handler <- t.dropped_no_handler + 1
        | Some handler ->
          t.delivered <- t.delivered + 1;
          handler msg)

(* Synchronous delivery used by the sequential-action scheduler of the
   analysis model: the receive step runs immediately (actions are serial).
   Returns whether the message was delivered to a live handler. *)
let send_immediate t ~dst msg =
  t.sent <- t.sent + 1;
  if Sf_prng.Rng.bernoulli t.rng (drop_probability t ~dst) then begin
    t.lost <- t.lost + 1;
    false
  end
  else
    match Hashtbl.find_opt t.handlers dst with
    | None ->
      t.dropped_no_handler <- t.dropped_no_handler + 1;
      false
    | Some handler ->
      t.delivered <- t.delivered + 1;
      handler msg;
      true

let statistics t =
  {
    messages_sent = t.sent;
    messages_delivered = t.delivered;
    messages_lost = t.lost;
    messages_to_dead_nodes = t.dropped_no_handler;
  }

let observed_loss_rate t =
  if t.sent = 0 then 0. else float_of_int t.lost /. float_of_int t.sent
