(* The protocol optimizations sketched (and deferred) at the end of the
   paper's section 5, implemented as a parameterized S&F so their effect can
   be measured:

   1. *Mark-and-undelete*: instead of clearing sent entries, mark them; a
      marked entry does not count toward the outdegree and may be
      overwritten by received ids, but when the outdegree hits dL the node
      *undeletes* marked entries instead of duplicating.  Undeletion
      resurrects original instances, so it compensates loss without
      creating anchored copies — the dependence cost of duplication
      disappears.
   2. *Replace-when-full*: a full receiver overwrites two uniformly chosen
      occupied slots instead of deleting the received ids, trading deletion
      loss for faster mixing.
   3. *Batching*: each message carries the sender's id plus [batch] ids
      from the view (clearing or marking batch + 1 entries), reducing the
      message count per exchanged id.

   With all options off and batch = 1, the dynamics coincide with the
   standard S&F of {!Protocol} (a qcheck test enforces this).  The
   simulator is self-contained and sequential-action, mirroring
   {!Baselines}. *)

type options = {
  mark_and_undelete : bool;
  replace_when_full : bool;
  batch : int;  (* forwarded ids per message, >= 1 *)
}

let standard = { mark_and_undelete = false; replace_when_full = false; batch = 1 }

type slot = { entry : View.entry; marked : bool }

type node = {
  id : int;
  slots : slot option array;
  mutable duplications : int;
  mutable undeletions : int;
  mutable deletions : int;
}

type t = {
  options : options;
  view_size : int;
  lower_threshold : int;
  loss_rate : float;
  rng : Sf_prng.Rng.t;
  nodes : node array;
  mutable next_serial : int;
  mutable actions : int;
  mutable sends : int;
  mutable losses : int;
}

let fresh_serial t =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  s

(* Outdegree: unmarked entries only. *)
let degree node =
  Array.fold_left
    (fun acc slot -> match slot with Some { marked = false; _ } -> acc + 1 | _ -> acc)
    0 node.slots

let create ~seed ~n ~view_size ~lower_threshold ~loss_rate ~options ~topology =
  if options.batch < 1 then invalid_arg "Variants.create: batch must be >= 1";
  let rng = Sf_prng.Rng.create seed in
  let t =
    {
      options;
      view_size;
      lower_threshold;
      loss_rate;
      rng;
      nodes =
        Array.init n (fun id ->
            {
              id;
              slots = Array.make view_size None;
              duplications = 0;
              undeletions = 0;
              deletions = 0;
            });
      next_serial = 0;
      actions = 0;
      sends = 0;
      losses = 0;
    }
  in
  Array.iter
    (fun node ->
      List.iteri
        (fun i v ->
          if i >= view_size then invalid_arg "Variants.create: topology exceeds view";
          node.slots.(i) <-
            Some
              {
                entry = { View.id = v; serial = fresh_serial t; anchor = None; born = 0 };
                marked = false;
              })
        (topology node.id))
    t.nodes;
  t

(* Slots holding unmarked entries. *)
let occupied_slots node =
  let acc = ref [] in
  Array.iteri
    (fun i slot ->
      match slot with Some { marked = false; _ } -> acc := i :: !acc | _ -> ())
    node.slots;
  Array.of_list !acc

(* Slots a received id may land in: empty ones, plus marked ones (a marked
   entry is logically deleted and may be overwritten). *)
let writable_slots node =
  let acc = ref [] in
  Array.iteri
    (fun i slot ->
      match slot with
      | None | Some { marked = true; _ } -> acc := i :: !acc
      | Some { marked = false; _ } -> ())
    node.slots;
  Array.of_list !acc

let marked_slots node =
  let acc = ref [] in
  Array.iteri
    (fun i slot ->
      match slot with Some { marked = true; _ } -> acc := i :: !acc | _ -> ())
    node.slots;
  Array.of_list !acc

(* Install one entry at the receiver, honoring the replace-when-full
   option. Returns false when the id was deleted. *)
let install t node entry =
  let writable = writable_slots node in
  if Array.length writable > 0 then begin
    node.slots.(Sf_prng.Rng.choose t.rng writable) <- Some { entry; marked = false };
    true
  end
  else if t.options.replace_when_full then begin
    let slot = Sf_prng.Rng.int t.rng t.view_size in
    node.slots.(slot) <- Some { entry; marked = false };
    true
  end
  else begin
    node.deletions <- node.deletions + 1;
    false
  end

let receive t node entries = List.iter (fun e -> ignore (install t node e)) entries

let initiate t node =
  let occupied = occupied_slots node in
  let needed = t.options.batch + 1 in
  (* The action needs a target plus [batch] payload ids; drawing any empty
     slot aborts the action, which for batch = 1 reproduces the standard
     two-slot selection (slot pairs are drawn without replacement, so
     drawing "needed" distinct slots and requiring all non-empty matches
     S&F when needed = 2). *)
  let slots = Array.init t.view_size (fun i -> i) in
  Sf_prng.Rng.shuffle t.rng slots;
  let chosen = Array.sub slots 0 (min needed t.view_size) in
  let all_occupied =
    Array.for_all
      (fun i ->
        match node.slots.(i) with Some { marked = false; _ } -> true | _ -> false)
      chosen
  in
  if (not all_occupied) || Array.length occupied < needed then ()
  else begin
    let entry_at i =
      match node.slots.(i) with
      | Some { entry; marked = false } -> entry
      | _ -> assert false
    in
    let target = entry_at chosen.(0) in
    let payload = List.init t.options.batch (fun k -> entry_at chosen.(k + 1)) in
    let d = degree node in
    let at_threshold = d <= t.lower_threshold in
    let compensated =
      if at_threshold && t.options.mark_and_undelete then begin
        (* Undelete: recover marked originals instead of duplicating. *)
        let marked = marked_slots node in
        Array.iter
          (fun i ->
            match node.slots.(i) with
            | Some { entry; marked = true } ->
              node.slots.(i) <- Some { entry; marked = false };
              node.undeletions <- node.undeletions + 1
            | _ -> ())
          marked;
        (* After undeletion the entries are still sent; clear or keep per
           the refreshed degree. *)
        degree node <= t.lower_threshold
      end
      else at_threshold
    in
    let sent_payload =
      if compensated then begin
        node.duplications <- node.duplications + 1;
        (* Duplication: the receiver gets anchored copies. *)
        List.map
          (fun (e : View.entry) ->
            { e with View.serial = fresh_serial t; anchor = Some node.id })
          payload
      end
      else begin
        (* Clear (or mark) the sent entries. *)
        Array.iter
          (fun i ->
            if t.options.mark_and_undelete then
              match node.slots.(i) with
              | Some { entry; _ } -> node.slots.(i) <- Some { entry; marked = true }
              | None -> ()
            else node.slots.(i) <- None)
          chosen;
        List.map (fun (e : View.entry) -> { e with View.anchor = None }) payload
      end
    in
    let reinforcement =
      let anchor = if compensated then Some node.id else None in
      { View.id = node.id; serial = fresh_serial t; anchor; born = t.actions }
    in
    t.sends <- t.sends + 1;
    if Sf_prng.Rng.bernoulli t.rng t.loss_rate then t.losses <- t.losses + 1
    else receive t t.nodes.(target.View.id) (reinforcement :: sent_payload)
  end

let step t =
  t.actions <- t.actions + 1;
  initiate t (Sf_prng.Rng.choose t.rng t.nodes)

let run_rounds t rounds =
  for _ = 1 to rounds do
    for _ = 1 to Array.length t.nodes do
      step t
    done
  done

(* --- Measurement --- *)

let view_of node =
  let v = View.create (Array.length node.slots) in
  Array.iteri
    (fun i slot ->
      match slot with
      | Some { entry; marked = false } -> View.set v i entry
      | _ -> ())
    node.slots;
  v

let outdegree_summary t =
  let summary = Sf_stats.Summary.create () in
  Array.iter (fun node -> Sf_stats.Summary.add_int summary (degree node)) t.nodes;
  summary

let independence_census t =
  Census.of_views (Array.to_seq t.nodes |> Seq.map (fun n -> (n.id, view_of n)))

type counters = {
  actions : int;
  sends : int;
  losses : int;
  duplications : int;
  undeletions : int;
  deletions : int;
}

let counters t =
  let dup = Array.fold_left (fun a (n : node) -> a + n.duplications) 0 t.nodes in
  let und = Array.fold_left (fun a (n : node) -> a + n.undeletions) 0 t.nodes in
  let del = Array.fold_left (fun a (n : node) -> a + n.deletions) 0 t.nodes in
  {
    actions = t.actions;
    sends = t.sends;
    losses = t.losses;
    duplications = dup;
    undeletions = und;
    deletions = del;
  }

let is_weakly_connected t =
  let g = Sf_graph.Digraph.create () in
  Array.iter
    (fun node ->
      Sf_graph.Digraph.ensure_vertex g node.id;
      Array.iter
        (fun slot ->
          match slot with
          | Some { entry; marked = false } ->
            Sf_graph.Digraph.add_edge g node.id entry.View.id
          | _ -> ())
        node.slots)
    t.nodes;
  Sf_graph.Digraph.is_weakly_connected g
