(* The flat-state spreading engine: rumor rounds layered on the sharded
   million-node runner.

   The engine owns NO membership state.  It reads the world through the
   public [Runner.Sharded] surface — the packed view store for sampling,
   the liveness map, the round-stable crash/partition windows — and keeps
   its own per-shard spread state partitioned by the world's own
   [shard_of] map, so the owner-only write discipline (and with it the
   domain-count invariance) carries over: per-shard infection bitmaps,
   per-shard RNG streams split from the engine's own seed in shard order
   (the world's streams are untouched, so the membership replay is
   bit-for-bit unchanged), per-shard loss-chain instances, and a message
   arena matrix of 3-int rows (dst, src, carried address).

   One spreading round = one membership round of the world, then a
   bulk-synchronous spread schedule over the same logical shards:

     I.   generate — each shard walks its owned slots in order: clears
          infection bits of slots that died in this round's churn,
          censuses live/crashed/informed, and emits this round's
          messages.  The verdict pipeline (destination crash window,
          partition, loss chain) runs at send time with the sending
          shard's RNG; surviving messages land in the arena row owned by
          (source shard, destination shard).
     II.  deliver — each shard drains the rows addressed to it, source
          shards in index order, messages in generation order: infect /
          count duplicate / count to-dead, absorb Direct addresses.
          Push-pull responses are generated here (judged with the
          responder shard's RNG, in drain order) into a second matrix.
     III. deliver-responses (push-pull only) — drain the response rows.

   Every phase reads foreign state only through round-stable world
   queries and writes only shard-owned state, so any [domains] value
   replays the single-domain run bit-for-bit; [equal] is the oracle. *)

module Sharded = Sf_core.Runner.Sharded
module VFlat = Sf_core.View.Flat
module Protocol = Sf_core.Protocol
module Rng = Sf_prng.Rng
module Loss = Sf_faults.Loss

(* Message rows: destination, source, carried address (-1 when none). *)
let fields = 3

type arena = { mutable buf : int array; mutable len : int }

let arena_create () = { buf = Array.make (fields * 64) 0; len = 0 }
let arena_clear a = a.len <- 0

let arena_push a ~dst ~src ~carried =
  let need = a.len + fields in
  if need > Array.length a.buf then begin
    let grown = Array.make (max need (2 * Array.length a.buf)) 0 in
    Array.blit a.buf 0 grown 0 a.len;
    a.buf <- grown
  end;
  let b = a.buf and i = a.len in
  b.(i) <- dst;
  b.(i + 1) <- src;
  b.(i + 2) <- carried;
  a.len <- need

(* All mutable per-shard spread state: written only by the domain
   currently running this shard, reduced by the coordinator between
   barriers. *)
type sshard = {
  sp_owned : int array;  (* owned slots, ascending (the world's order) *)
  sp_rng : Rng.t;
  sp_loss : Loss.t option;  (* private chain; None on the Iid fast path *)
  sp_inf : Bytes.t;  (* infection bit per owned slot *)
  sp_out : arena array;  (* rumor rows, one per destination shard *)
  sp_req : arena array;  (* pull-request rows (push-pull) *)
  sp_resp : arena array;  (* pull-response rows (push-pull) *)
  (* Direct-strategy rings, [owned * capacity] cells (empty for the
     other strategies); see {!Rings}. *)
  sp_leads : int array;
  sp_lead_head : int array;
  sp_lead_len : int array;
  sp_recent : int array;
  sp_recent_head : int array;
  sp_recent_len : int array;
  mutable sp_infected : int;  (* infected among live owned slots *)
  mutable sp_live : int;  (* censused in generate *)
  mutable sp_frozen : int;  (* live but inside a crash window *)
  mutable sp_messages : int;
  mutable sp_pushes : int;
  mutable sp_requests : int;
  mutable sp_duplicates : int;
  mutable sp_lost : int;
  mutable sp_to_dead : int;
}

type t = {
  world : Sharded.t;
  strategy : Strategy.t;
  fanout : int;
  coverage_target : float;
  chance : float;
  view_size : int;
  shard_count : int;
  sshards : sshard array;
  pos : int array;  (* slot -> index within its owner's [sp_owned] *)
  g_coverage : Sf_obs.Metrics.gauge;
  mutable rounds : int;
  mutable cov_rev : float list;
  mutable half_at : int option;
  mutable target_at : int option;
}

let inf_get sh p = Char.code (Bytes.get sh.sp_inf p) <> 0
let inf_set sh p = Bytes.set sh.sp_inf p '\001'
let inf_clear sh p = Bytes.set sh.sp_inf p '\000'

let create ?(coverage_target = 0.99) ?(fanout = 2) ?metrics ~strategy ~source
    ~seed world =
  if fanout < 1 then invalid_arg "Sf_spread.Flat.create: fanout must be positive";
  if coverage_target <= 0. || coverage_target > 1. then
    invalid_arg "Sf_spread.Flat.create: coverage_target must lie in (0, 1]";
  if not (Sharded.is_live world source) then
    invalid_arg "Sf_spread.Flat.create: source is not a live node";
  let shards = Sharded.shard_count world in
  let capacity = Sharded.capacity world in
  let counts = Array.make shards 0 in
  for u = 0 to capacity - 1 do
    let s = Sharded.shard_of world u in
    counts.(s) <- counts.(s) + 1
  done;
  let owned = Array.init shards (fun i -> Array.make counts.(i) 0) in
  let pos = Array.make capacity 0 in
  let fill = Array.make shards 0 in
  (* Ascending slot scan reproduces the world's own owned order:
     lo..hi-1 first, then the strided headroom slots in ascending
     stride. *)
  for u = 0 to capacity - 1 do
    let s = Sharded.shard_of world u in
    owned.(s).(fill.(s)) <- u;
    pos.(u) <- fill.(s);
    fill.(s) <- fill.(s) + 1
  done;
  let loss_model =
    match Sharded.scenario world with
    | Some sc -> (
      match sc.Sf_faults.Scenario.loss with Loss.Iid -> None | m -> Some m)
    | None -> None
  in
  (* The engine's streams split from its own root in shard order — same
     discipline as the world's, fully independent of it. *)
  let root = Rng.create seed in
  let direct = strategy = Strategy.Direct in
  let sshards =
    Array.init shards (fun i ->
        let olen = Array.length owned.(i) in
        {
          sp_owned = owned.(i);
          sp_rng = Rng.split root;
          sp_loss = Option.map Loss.create loss_model;
          sp_inf = Bytes.make olen '\000';
          sp_out = Array.init shards (fun _ -> arena_create ());
          sp_req = Array.init shards (fun _ -> arena_create ());
          sp_resp = Array.init shards (fun _ -> arena_create ());
          sp_leads =
            (if direct then Array.make (olen * Strategy.lead_capacity) (-1)
             else [||]);
          sp_lead_head = (if direct then Array.make olen 0 else [||]);
          sp_lead_len = (if direct then Array.make olen 0 else [||]);
          sp_recent =
            (if direct then Array.make (olen * Strategy.recent_capacity) (-1)
             else [||]);
          sp_recent_head = (if direct then Array.make olen 0 else [||]);
          sp_recent_len = (if direct then Array.make olen 0 else [||]);
          sp_infected = 0;
          sp_live = 0;
          sp_frozen = 0;
          sp_messages = 0;
          sp_pushes = 0;
          sp_requests = 0;
          sp_duplicates = 0;
          sp_lost = 0;
          sp_to_dead = 0;
        })
  in
  let s0 = Sharded.shard_of world source in
  let sh0 = sshards.(s0) in
  inf_set sh0 pos.(source);
  sh0.sp_infected <- 1;
  let m = match metrics with Some m -> m | None -> Sf_obs.Metrics.create () in
  {
    world;
    strategy;
    fanout;
    coverage_target;
    chance = Sharded.loss_rate world;
    view_size = (Sharded.config world).Protocol.view_size;
    shard_count = shards;
    sshards;
    pos;
    g_coverage = Sf_obs.Metrics.gauge m "spread_coverage";
    rounds = 0;
    cov_rev = [];
    half_at = None;
    target_at = None;
  }

(* One uniformly random non-self id from [u]'s current view, or [-1]:
   the allocation-free two-pass scan of [Sampling.sample], applied to the
   packed store.  A successful draw consumes exactly one [Rng.int]; a
   [-1] result consumes none. *)
let sample_view t rng u =
  let store = Sharded.store t.world in
  let candidates = ref 0 in
  for k = 0 to t.view_size - 1 do
    let id = VFlat.id_at store u k in
    if id >= 0 && id <> u then incr candidates
  done;
  if !candidates = 0 then -1
  else begin
    let pick = Rng.int rng !candidates in
    let seen = ref 0 and found = ref (-1) in
    for k = 0 to t.view_size - 1 do
      if !found < 0 then begin
        let id = VFlat.id_at store u k in
        if id >= 0 && id <> u then begin
          if !seen = pick then found := id;
          incr seen
        end
      end
    done;
    !found
  end

(* The per-message verdict, judged at send time with the sending shard's
   RNG: destination crash window, partition window (both round-stable
   world queries, safe from any domain), then the loss process. *)
let judge t sh ~src ~dst =
  sh.sp_messages <- sh.sp_messages + 1;
  if Sharded.is_crashed t.world dst then begin
    sh.sp_lost <- sh.sp_lost + 1;
    false
  end
  else if Sharded.partitioned t.world ~src ~dst then begin
    sh.sp_lost <- sh.sp_lost + 1;
    false
  end
  else begin
    let dropped =
      match sh.sp_loss with
      | Some chain -> Loss.drop chain sh.sp_rng ~chance:t.chance ~src ~dst
      | None -> t.chance > 0. && Rng.bernoulli sh.sp_rng t.chance
    in
    if dropped then begin
      sh.sp_lost <- sh.sp_lost + 1;
      false
    end
    else true
  end

let dst_shard t dst = Sharded.shard_of t.world dst

(* Direct-ring accessors over the per-shard flat arrays. *)
let recent_mem sh p v =
  Rings.mem sh.sp_recent
    ~off:(p * Strategy.recent_capacity)
    ~cap:Strategy.recent_capacity ~head:sh.sp_recent_head.(p)
    ~len:sh.sp_recent_len.(p) v

let recent_add sh p v =
  if not (recent_mem sh p v) then begin
    let head, len =
      Rings.add sh.sp_recent
        ~off:(p * Strategy.recent_capacity)
        ~cap:Strategy.recent_capacity ~head:sh.sp_recent_head.(p)
        ~len:sh.sp_recent_len.(p) v
    in
    sh.sp_recent_head.(p) <- head;
    sh.sp_recent_len.(p) <- len
  end

let lead_mem sh p v =
  Rings.mem sh.sp_leads
    ~off:(p * Strategy.lead_capacity)
    ~cap:Strategy.lead_capacity ~head:sh.sp_lead_head.(p)
    ~len:sh.sp_lead_len.(p) v

let lead_push sh p v =
  if not (lead_mem sh p v) && not (recent_mem sh p v) then begin
    let head, len =
      Rings.add sh.sp_leads
        ~off:(p * Strategy.lead_capacity)
        ~cap:Strategy.lead_capacity ~head:sh.sp_lead_head.(p)
        ~len:sh.sp_lead_len.(p) v
    in
    sh.sp_lead_head.(p) <- head;
    sh.sp_lead_len.(p) <- len
  end

let lead_pop sh p =
  let v, head, len =
    Rings.pop sh.sp_leads
      ~off:(p * Strategy.lead_capacity)
      ~cap:Strategy.lead_capacity ~head:sh.sp_lead_head.(p)
      ~len:sh.sp_lead_len.(p)
  in
  sh.sp_lead_head.(p) <- head;
  sh.sp_lead_len.(p) <- len;
  v

let lead_reset sh p =
  let off = p * Strategy.lead_capacity in
  Array.fill sh.sp_leads off Strategy.lead_capacity (-1);
  sh.sp_lead_head.(p) <- 0;
  sh.sp_lead_len.(p) <- 0;
  let off = p * Strategy.recent_capacity in
  Array.fill sh.sp_recent off Strategy.recent_capacity (-1);
  sh.sp_recent_head.(p) <- 0;
  sh.sp_recent_len.(p) <- 0

let emit_push t sh u =
  for _ = 1 to t.fanout do
    let dst = sample_view t sh.sp_rng u in
    if dst >= 0 then begin
      sh.sp_pushes <- sh.sp_pushes + 1;
      if judge t sh ~src:u ~dst then
        arena_push sh.sp_out.(dst_shard t dst) ~dst ~src:u ~carried:(-1)
    end
  done

let emit_requests t sh u =
  for _ = 1 to t.fanout do
    let dst = sample_view t sh.sp_rng u in
    if dst >= 0 then begin
      sh.sp_requests <- sh.sp_requests + 1;
      if judge t sh ~src:u ~dst then
        arena_push sh.sp_req.(dst_shard t dst) ~dst ~src:u ~carried:(-1)
    end
  done

let direct_send t sh u dst =
  (* Rumor messages carry one freshly sampled view address; receivers
     absorb it as a lead, letting the frontier outrun the views. *)
  let c = sample_view t sh.sp_rng u in
  let carried = if c >= 0 && c <> dst then c else -1 in
  sh.sp_pushes <- sh.sp_pushes + 1;
  if judge t sh ~src:u ~dst then
    arena_push sh.sp_out.(dst_shard t dst) ~dst ~src:u ~carried

let emit_direct t sh u p =
  let budget = ref t.fanout in
  (* Learned addresses first: direct contacts, possibly outside the
     current view.  Stale leads (already contacted) cost no budget. *)
  let exhausted = ref false in
  while !budget > 0 && not !exhausted do
    let v = lead_pop sh p in
    if v < 0 then exhausted := true
    else if v <> u && not (recent_mem sh p v) then begin
      recent_add sh p v;
      direct_send t sh u v;
      decr budget
    end
  done;
  (* Fill the remainder from the live view; an attempt landing on a
     recently contacted peer is throttled (consumes the attempt). *)
  for _ = 1 to !budget do
    let v = sample_view t sh.sp_rng u in
    if v >= 0 && not (recent_mem sh p v) then begin
      recent_add sh p v;
      direct_send t sh u v
    end
  done

(* Phase I: census, clear infections of slots that died in this round's
   churn, and emit this round's messages.  Infection status is read from
   the shard's own bitmap as it stood at round start (deliveries only
   land in phase II), so the classification is a round-start snapshot by
   construction — no copy needed. *)
let generate t sh =
  Array.iter arena_clear sh.sp_out;
  Array.iter arena_clear sh.sp_req;
  Array.iter arena_clear sh.sp_resp;
  sh.sp_live <- 0;
  sh.sp_frozen <- 0;
  let world = t.world in
  let olen = Array.length sh.sp_owned in
  for p = 0 to olen - 1 do
    let u = sh.sp_owned.(p) in
    if not (Sharded.is_live world u) then begin
      if inf_get sh p then begin
        inf_clear sh p;
        sh.sp_infected <- sh.sp_infected - 1;
        (* A reincarnated slot must start unlearned too. *)
        if t.strategy = Strategy.Direct then lead_reset sh p
      end
    end
    else begin
      sh.sp_live <- sh.sp_live + 1;
      if Sharded.is_crashed world u then sh.sp_frozen <- sh.sp_frozen + 1
      else begin
        let informed = inf_get sh p in
        match t.strategy with
        | Strategy.Push -> if informed then emit_push t sh u
        | Strategy.Push_pull ->
          if informed then emit_push t sh u else emit_requests t sh u
        | Strategy.Direct -> if informed then emit_direct t sh u p
      end
    end
  done

(* Phase II: drain the rumor rows addressed to this shard — source
   shards in index order, rows in generation order — then answer the
   pull requests (push-pull), judging each response with this (the
   responder's) shard's RNG. *)
let deliver t i sh =
  let world = t.world in
  for src_shard = 0 to t.shard_count - 1 do
    let a = t.sshards.(src_shard).sp_out.(i) in
    let rows = a.len / fields in
    for r = 0 to rows - 1 do
      let base = r * fields in
      let dst = a.buf.(base) in
      let src = a.buf.(base + 1) in
      let carried = a.buf.(base + 2) in
      if not (Sharded.is_live world dst) then
        sh.sp_to_dead <- sh.sp_to_dead + 1
      else begin
        let p = t.pos.(dst) in
        if inf_get sh p then sh.sp_duplicates <- sh.sp_duplicates + 1
        else begin
          inf_set sh p;
          sh.sp_infected <- sh.sp_infected + 1
        end;
        if t.strategy = Strategy.Direct then begin
          (* The sender is informed: never contact it back. *)
          recent_add sh p src;
          if carried >= 0 && carried <> dst then lead_push sh p carried
        end
      end
    done
  done;
  if t.strategy = Strategy.Push_pull then
    for src_shard = 0 to t.shard_count - 1 do
      let a = t.sshards.(src_shard).sp_req.(i) in
      let rows = a.len / fields in
      for r = 0 to rows - 1 do
        let base = r * fields in
        let responder = a.buf.(base) in
        let requester = a.buf.(base + 1) in
        if not (Sharded.is_live world responder) then
          sh.sp_to_dead <- sh.sp_to_dead + 1
        else if inf_get sh t.pos.(responder) then begin
          sh.sp_pushes <- sh.sp_pushes + 1;
          if judge t sh ~src:responder ~dst:requester then
            arena_push
              sh.sp_resp.(dst_shard t requester)
              ~dst:requester ~src:responder ~carried:(-1)
        end
      done
    done

(* Phase III (push-pull only): drain the response rows. *)
let deliver_responses t i sh =
  let world = t.world in
  for src_shard = 0 to t.shard_count - 1 do
    let a = t.sshards.(src_shard).sp_resp.(i) in
    let rows = a.len / fields in
    for r = 0 to rows - 1 do
      let base = r * fields in
      let dst = a.buf.(base) in
      if not (Sharded.is_live world dst) then
        sh.sp_to_dead <- sh.sp_to_dead + 1
      else begin
        let p = t.pos.(dst) in
        if inf_get sh p then sh.sp_duplicates <- sh.sp_duplicates + 1
        else begin
          inf_set sh p;
          sh.sp_infected <- sh.sp_infected + 1
        end
      end
    done
  done

let infected_count t =
  Array.fold_left (fun acc sh -> acc + sh.sp_infected) 0 t.sshards

let coverage_now t =
  match t.cov_rev with [] -> 0. | f :: _ -> f

let run_round t ~domains =
  Sharded.run_round t.world ~domains;
  Sf_engine.Par.run ~domains ~tasks:t.shard_count (fun i ->
      generate t t.sshards.(i));
  Sf_engine.Par.run ~domains ~tasks:t.shard_count (fun i ->
      deliver t i t.sshards.(i));
  if t.strategy = Strategy.Push_pull then
    Sf_engine.Par.run ~domains ~tasks:t.shard_count (fun i ->
        deliver_responses t i t.sshards.(i));
  t.rounds <- t.rounds + 1;
  let live = ref 0 and frozen = ref 0 in
  Array.iter
    (fun sh ->
      live := !live + sh.sp_live;
      frozen := !frozen + sh.sp_frozen)
    t.sshards;
  let f =
    Float.min 1.
      (float_of_int (infected_count t)
      /. float_of_int (max 1 (!live - !frozen)))
  in
  t.cov_rev <- f :: t.cov_rev;
  Sf_obs.Metrics.set t.g_coverage f;
  if t.half_at = None && f >= 0.5 then t.half_at <- Some t.rounds;
  if t.target_at = None && f >= t.coverage_target then
    t.target_at <- Some t.rounds

let report t =
  let messages = ref 0
  and pushes = ref 0
  and requests = ref 0
  and duplicates = ref 0
  and lost = ref 0
  and to_dead = ref 0 in
  Array.iter
    (fun sh ->
      messages := !messages + sh.sp_messages;
      pushes := !pushes + sh.sp_pushes;
      requests := !requests + sh.sp_requests;
      duplicates := !duplicates + sh.sp_duplicates;
      lost := !lost + sh.sp_lost;
      to_dead := !to_dead + sh.sp_to_dead)
    t.sshards;
  {
    Report.strategy = t.strategy;
    fanout = t.fanout;
    rounds = t.rounds;
    rounds_to_half = t.half_at;
    rounds_to_target = t.target_at;
    coverage = Array.of_list (List.rev t.cov_rev);
    messages = !messages;
    pushes = !pushes;
    requests = !requests;
    duplicates = !duplicates;
    lost = !lost;
    to_dead = !to_dead;
  }

let run ?(max_rounds = 200) ~domains t =
  while t.target_at = None && t.rounds < max_rounds do
    run_round t ~domains
  done;
  report t

let world t = t.world
let rounds t = t.rounds
let reached t = t.target_at <> None

(* Bit-for-bit engine equality: the membership worlds (the sharded
   runner's own oracle) plus every piece of spread state — infection
   bitmaps and counts, per-shard counters, Direct rings, loss-chain
   positions, coverage history and milestone rounds. *)
let equal a b =
  Sharded.equal a.world b.world
  && a.strategy = b.strategy && a.fanout = b.fanout
  && a.rounds = b.rounds
  && a.cov_rev = b.cov_rev
  && a.half_at = b.half_at && a.target_at = b.target_at
  && Array.length a.sshards = Array.length b.sshards
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      let y = b.sshards.(i) in
      if
        not
          (Bytes.equal x.sp_inf y.sp_inf
          && x.sp_infected = y.sp_infected
          && x.sp_live = y.sp_live && x.sp_frozen = y.sp_frozen
          && x.sp_messages = y.sp_messages
          && x.sp_pushes = y.sp_pushes
          && x.sp_requests = y.sp_requests
          && x.sp_duplicates = y.sp_duplicates
          && x.sp_lost = y.sp_lost && x.sp_to_dead = y.sp_to_dead
          && x.sp_leads = y.sp_leads
          && x.sp_lead_head = y.sp_lead_head
          && x.sp_lead_len = y.sp_lead_len
          && x.sp_recent = y.sp_recent
          && x.sp_recent_head = y.sp_recent_head
          && x.sp_recent_len = y.sp_recent_len
          && (match (x.sp_loss, y.sp_loss) with
             | None, None -> true
             | Some lx, Some ly -> Loss.in_burst lx = Loss.in_burst ly
             | _ -> false))
      then ok := false)
    a.sshards;
  !ok
