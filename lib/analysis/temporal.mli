(** Temporal independence bounds (paper, section 7.5). *)

type params = {
  n : int;
  view_size : int;
  expected_outdegree : float;  (** dE, from the degree MC *)
  alpha : float;               (** expected independence fraction *)
}

val make_params :
  n:int -> view_size:int -> expected_outdegree:float -> alpha:float -> params

val expected_conductance_bound : params -> float
(** Lemma 7.14: Phi(G) >= dE(dE-1) alpha / (2 s (s-1)). *)

val tau_epsilon : params -> epsilon:float -> float
(** Lemma 7.15: transformations to eps-independence from a random state. *)

val actions_per_node : params -> epsilon:float -> float
(** tau_eps / n — the O(s log n) actions-per-node headline. *)

val headline_scaling : params -> float
(** s ln n, for scaling tables. *)

val expected_overlap_after :
  params -> survival_per_round:float -> rounds:int -> float
(** Geometric prediction of instance overlap after [rounds] rounds, for
    comparison with measured overlap decay. *)
