(** Local views: fixed arrays of [s] slots holding id instances
    (paper, section 2).

    Instances carry a unique [serial] (followed for decay and temporal
    independence measurements), an optional [anchor] (the node whose view
    the instance depends on, set by duplication — Property M4), and a [born]
    action stamp.

    Views are stored flat: four parallel unboxed int arrays rather than an
    [entry option array], so no per-entry heap objects exist.  {!entry}
    values are materialized on demand by {!get}/{!iter}/{!fold}; hot paths
    that only need ids can use the allocation-free {!id_at}.  {!Flat}
    packs whole worlds of views into single contiguous arrays for the
    million-node simulation path. *)

type entry = {
  id : int;
  serial : int;
  anchor : int option;
  born : int;
}

type t

val create : int -> t
(** [create s] makes an all-empty view of [s] slots. *)

val size : t -> int

val degree : t -> int
(** d(u): number of non-empty slots (cached; audited against a recount by
    [Sf_check]). *)

val is_full : t -> bool

val free_slots : t -> int

val get : t -> int -> entry option
val set : t -> int -> entry -> unit
val clear : t -> int -> unit
val clear_all : t -> unit

val id_at : t -> int -> int
(** [id_at t i] is the id in slot [i], or [-1] when the slot is empty.
    Allocation-free — the sampling facade's hot path. *)

val random_empty_slot : t -> Sf_prng.Rng.t -> int option
(** Uniformly random empty slot, [None] when full. *)

val iter : (int -> entry -> unit) -> t -> unit
(** Iterate non-empty slots as [f slot entry]. *)

val fold : ('a -> entry -> 'a) -> 'a -> t -> 'a

val ids : t -> int list
(** Ids of all instances, in slot order (with duplicates). *)

val mem : t -> int -> bool
val count_id : t -> int -> int
val entries : t -> entry list

val pp : Format.formatter -> t -> unit

(** Packed whole-world views: every view of an [n]-node world in four
    contiguous unboxed int arrays indexed by [node * view_size + slot],
    plus a cached per-node degree array.  A slot is empty when its id is
    [-1]; an anchor of [-1] encodes "none".  This is the state layout of
    the sharded runner ({!Sf_core.Runner.Sharded}): no per-node or
    per-entry heap objects, so a million-node world is a handful of flat
    arrays the GC never walks. *)
module Flat : sig
  type t

  val create : nodes:int -> view_size:int -> t
  (** All slots empty.  O(nodes * view_size) words, allocated once. *)

  val node_count : t -> int
  val view_size : t -> int

  val degree : t -> int -> int
  (** [degree t u]: cached outdegree of node [u]. *)

  val id_at : t -> int -> int -> int
  (** [id_at t u slot]: id in the slot, or [-1] when empty. *)

  val serial_at : t -> int -> int -> int
  val anchor_at : t -> int -> int -> int
  (** [-1] when the instance has no anchor. *)

  val born_at : t -> int -> int -> int

  val set :
    t -> int -> int -> id:int -> serial:int -> anchor:int -> born:int -> unit
  (** [set t u slot ~id ~serial ~anchor ~born] installs an instance
      ([anchor] is [-1] for none).  Raises [Invalid_argument] on a
      negative id. *)

  val clear : t -> int -> int -> unit

  val random_empty_slot : t -> int -> Sf_prng.Rng.t -> int
  (** Uniformly random empty slot of node [u], [-1] when full.
      Allocation-free; same selection law as {!View.random_empty_slot}. *)

  val recount_degree : t -> int -> int
  (** Occupied-slot recount for node [u] — the audit cross-check for the
      cached degree array. *)

  val total_edges : t -> int
  (** Sum of all outdegrees (recomputed from the degree array). *)

  val equal : t -> t -> bool
  (** Bit-for-bit store equality — the domain-count determinism oracle. *)
end
