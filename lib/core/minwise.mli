(** Min-wise independent sampling layer (Brahms-style), the persistent
    alternative to evolving views discussed in the paper's section 3.1. *)

type t

val create : Sf_prng.Rng.t -> k:int -> t
(** [k] independent keyed min-hash samplers. *)

val observe : t -> int -> unit
(** Feed one observed id through every sampler. *)

val observe_all : t -> int list -> unit

val observed_count : t -> int

val samples : t -> int list
(** Current outputs of the non-empty samplers. *)

val invalidate : t -> is_dead:(int -> bool) -> unit
(** Reset samplers whose current output is a dead id. *)

(** Per-node sampler layers fed from a running S&F system. *)
type fleet

val create_fleet : Sf_prng.Rng.t -> k:int -> fleet
val layer : fleet -> node_id:int -> t

val feed_from_views : fleet -> Runner.t -> unit
(** Feed each live node's layer with its current view contents. *)

val snapshot : fleet -> (int, int list) Hashtbl.t

val raw_snapshot : fleet -> (int, int list) Hashtbl.t
(** Outputs aligned by sampler index, empty samplers as -1; the reference
    format for {!unchanged_fraction}. *)

val unchanged_fraction : fleet -> reference:(int, int list) Hashtbl.t -> float
(** Fraction of individual samplers whose output equals the reference
    snapshot — high for converged persistent samples (no temporal
    independence). *)
