(* A local view: a fixed array of [s] slots, each empty or holding one id
   instance (section 2 of the paper).  Duplicate ids are allowed — the
   membership graph is a multigraph — and are accounted as dependencies.

   Each stored instance carries bookkeeping that realizes the paper's
   analysis concepts mechanically:
   - [serial]: a unique instance number, preserved when the instance is
     forwarded and fresh when an instance is created (reinforcement or
     duplication).  Instance decay (Lemma 6.9, Fig 6.4) and temporal
     independence (Property M5) are measured by following serials.
   - [anchor]: [Some a] when the instance was created by a duplication at
     node [a] and is therefore spatially dependent on [a]'s view (Property
     M4).  Forwarding an instance without duplication clears the anchor,
     matching the dependence MC of Fig 7.1.
   - [born]: global action count at creation, for age statistics. *)

type entry = {
  id : int;
  serial : int;
  anchor : int option;
  born : int;
}

type t = {
  slots : entry option array;
  mutable filled : int;  (* cached count of non-empty slots *)
}

let create size =
  if size < 2 then invalid_arg "View.create: size must be at least 2";
  { slots = Array.make size None; filled = 0 }

let size t = Array.length t.slots

let degree t = t.filled
(* d(u): the node's outdegree. *)

let is_full t = t.filled = Array.length t.slots

let get t i = t.slots.(i)

let set t i entry =
  (match t.slots.(i) with
  | None -> t.filled <- t.filled + 1
  | Some _ -> ());
  t.slots.(i) <- Some entry

let clear t i =
  match t.slots.(i) with
  | None -> ()
  | Some _ ->
    t.slots.(i) <- None;
    t.filled <- t.filled - 1

let free_slots t = Array.length t.slots - t.filled

(* Uniformly random empty slot; the receive step of S&F places ids in
   uniformly chosen empty entries. *)
let random_empty_slot t rng =
  let free = free_slots t in
  if free = 0 then None
  else begin
    let target = Sf_prng.Rng.int rng free in
    let rec scan i remaining =
      match t.slots.(i) with
      | None when remaining = 0 -> i
      | None -> scan (i + 1) (remaining - 1)
      | Some _ -> scan (i + 1) remaining
    in
    Some (scan 0 target)
  end

let iter f t =
  Array.iteri (fun i slot -> match slot with Some e -> f i e | None -> ()) t.slots

let fold f init t =
  let acc = ref init in
  iter (fun _ e -> acc := f !acc e) t;
  !acc

let ids t = List.rev (fold (fun acc e -> e.id :: acc) [] t)

let mem t id = fold (fun acc e -> acc || e.id = id) false t

let count_id t id = fold (fun acc e -> if e.id = id then acc + 1 else acc) 0 t

let entries t = List.rev (fold (fun acc e -> e :: acc) [] t)

let clear_all t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.filled <- 0

let pp ppf t =
  let cell ppf = function
    | None -> Fmt.pf ppf "."
    | Some e -> Fmt.pf ppf "%d" e.id
  in
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any " ") cell) t.slots
