(* Tests for the million-node scale path: the flat view representation,
   the Par fork-join shim, the sharded bulk-synchronous runner and its
   domain-count determinism contract, plus the hot-path fixes that rode
   along (incremental sorted live array, allocation-free sampling). *)

module Runner = Sf_core.Runner
module Sharded = Sf_core.Runner.Sharded
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module View = Sf_core.View
module Census = Sf_core.Census
module Sampling = Sf_core.Sampling
module Invariant = Sf_check.Invariant
module Rng = Sf_prng.Rng

let small_config = Protocol.make_config ~view_size:12 ~lower_threshold:4

let make_system ?(seed = 21) ?(n = 60) ?(loss = 0.) ?(config = small_config)
    ?(out_degree = 4) () =
  let rng = Rng.create (seed + 1000) in
  let topology = Topology.regular rng ~n ~out_degree in
  Runner.create ~seed ~n ~loss_rate:loss ~config ~topology ()

(* --- Flat representation: cached degrees vs recount --- *)

(* Mirror a random op sequence onto a boxed view array and a Flat store and
   require, after every op, that each representation's cached degree equals
   a full occupied-slot recount and that the two representations agree. *)
let prop_degrees_match_recount =
  let nodes = 5 and s = 8 in
  QCheck.Test.make ~name:"View/Flat cached degrees match recount under ops"
    ~count:200
    QCheck.(small_list (triple small_nat small_nat small_nat))
    (fun ops ->
      let views = Array.init nodes (fun _ -> View.create s) in
      let store = View.Flat.create ~nodes ~view_size:s in
      let check_all () =
        for u = 0 to nodes - 1 do
          let boxed = View.degree views.(u) in
          let recount = ref 0 in
          for slot = 0 to s - 1 do
            if View.id_at views.(u) slot >= 0 then incr recount
          done;
          if boxed <> !recount then
            QCheck.Test.fail_reportf "view %d: cached %d <> recount %d" u boxed
              !recount;
          let flat = View.Flat.degree store u in
          if flat <> View.Flat.recount_degree store u then
            QCheck.Test.fail_reportf "flat %d: cached %d <> recount %d" u flat
              (View.Flat.recount_degree store u);
          if flat <> boxed then
            QCheck.Test.fail_reportf "node %d: flat %d <> boxed %d" u flat boxed
        done;
        true
      in
      List.for_all
        (fun (kind, u, slot) ->
          let u = u mod nodes and slot = slot mod s in
          (match kind mod 5 with
          | 0 | 1 | 2 ->
            let id = u + slot and serial = kind + (u * 100) + slot in
            View.set views.(u) slot
              { View.id; serial; anchor = None; born = 0 };
            View.Flat.set store u slot ~id ~serial ~anchor:(-1) ~born:0
          | 3 ->
            View.clear views.(u) slot;
            View.Flat.clear store u slot
          | _ ->
            View.clear_all views.(u);
            for i = 0 to s - 1 do
              View.Flat.clear store u i
            done);
          check_all ())
        ops)

(* --- Par: the fork-join shim --- *)

let test_par_determinism () =
  let fill domains =
    let out = Array.make 37 0 in
    Sf_engine.Par.run ~domains ~tasks:37 (fun i -> out.(i) <- (i * i) + 1);
    out
  in
  Alcotest.(check bool) "3 domains = 1 domain" true (fill 1 = fill 3);
  Alcotest.(check bool) "more domains than tasks" true (fill 1 = fill 64);
  Alcotest.(check bool)
    "task failure propagates after joining" true
    (match Sf_engine.Par.run ~domains:2 ~tasks:6 (fun i ->
         if i = 4 then failwith "boom")
     with
    | () -> false
    | exception Failure _ -> true)

(* --- Sharded runner: domain-count invariance --- *)

let scale_config = Protocol.make_config ~view_size:12 ~lower_threshold:4

let make_world () =
  Sharded.create ~shards:8 ~loss_rate:0.1 ~seed:7 ~n:600 ~config:scale_config ()

let test_domain_count_invariance () =
  let run domains =
    let w = make_world () in
    Sharded.run_rounds w ~domains 15;
    w
  in
  let a = run 1 and b = run 2 and c = run 4 in
  Alcotest.(check bool) "2 domains bit-identical" true (Sharded.equal a b);
  Alcotest.(check bool) "4 domains bit-identical" true (Sharded.equal a c);
  let census w = Census.of_flat (Sharded.store w) in
  Alcotest.(check bool) "census identical" true (census a = census c);
  Alcotest.(check bool) "counters identical" true
    (Sharded.world_counters a = Sharded.world_counters c);
  Alcotest.(check int) "rounds recorded" 15 (Sharded.rounds_completed a)

(* --- Sharded runner: the strict audit holds under loss --- *)

let test_sharded_strict_audit () =
  let w =
    Sharded.create ~shards:4 ~loss_rate:0.15 ~seed:11 ~n:400
      ~config:scale_config ()
  in
  let stats =
    Invariant.audited_sharded_run ~mode:Invariant.Strict ~scan_every:5
      ~domains:2 w ~rounds:40
  in
  Alcotest.(check int) "no violations" 0 stats.Invariant.violation_count;
  Alcotest.(check int) "all rounds audited" 40 stats.Invariant.actions_checked;
  Alcotest.(check bool) "scans ran" true (stats.Invariant.full_scans >= 8)

(* Conservation ledger sanity: the audited run checks the per-round
   deltas; here the end-to-end totals must tie the final edge count back
   to the initial ring. *)
let test_edge_ledger_totals () =
  let w = make_world () in
  let initial = Sharded.total_edges w in
  Sharded.run_rounds w ~domains:2 25;
  let dup, dropped = Sharded.conservation w in
  Alcotest.(check int) "edges = initial + 2 dup - 2 dropped"
    (initial + (2 * dup) - (2 * dropped))
    (Sharded.total_edges w)

(* --- Chaos at scale: scenario + churn + resilience on the sharded engine --- *)

let scenario s =
  match Sf_faults.Scenario.of_string s with
  | Ok sc -> sc
  | Error e -> Alcotest.fail ("scenario parse: " ^ e)

(* The section 6.3 solver the production drivers inject. *)
let chaos_policy () =
  let solve ~loss =
    let t =
      Sf_analysis.Thresholds.select_lossy ~d_hat:8 ~delta:0.01
        ~loss:(Float.min loss 0.45)
    in
    (t.Sf_analysis.Thresholds.lower_threshold, t.Sf_analysis.Thresholds.view_size)
  in
  Sf_resil.Policy.make ~estimator_window:1000 ~cooldown:4 ~solve ()

(* Bursty loss, a two-way partition, and a crash wave over the first
   tenth of the ring — the mixed regime the robustness issue targets. *)
let mixed_scenario () = scenario "ge:0.2:6;partition@4-9:2;crash@11-15:0-59"
let chaos_churn = { Sharded.churn_rate = 0.02; headroom = 64 }

let make_chaos_world ?resilience () =
  Sharded.create ~shards:8 ~seed:13 ~n:600 ~config:scale_config
    ~scenario:(mixed_scenario ()) ~churn:chaos_churn ?resilience ~probe_every:4
    ()

(* The headline determinism contract under chaos: with per-shard loss
   chains, barrier-time windows, shard-local churn and barrier-only
   resilience, the domain count must still be invisible. *)
let test_chaos_domain_invariance () =
  let run domains =
    let w = make_chaos_world ~resilience:(chaos_policy ()) () in
    Sharded.run_rounds w ~domains 20;
    w
  in
  let a = run 1 and b = run 2 and c = run 4 in
  Alcotest.(check bool) "2 domains bit-identical" true (Sharded.equal a b);
  Alcotest.(check bool) "4 domains bit-identical" true (Sharded.equal a c);
  let census w = Census.of_flat (Sharded.store w) in
  Alcotest.(check bool) "census identical" true (census a = census c);
  Alcotest.(check bool) "counters identical" true
    (Sharded.world_counters a = Sharded.world_counters c);
  (* The run actually exercised every fault class. *)
  (match Sharded.fault_statistics a with
  | None -> Alcotest.fail "scenario installed but no fault statistics"
  | Some fs ->
    let open Sf_faults.Injector in
    Alcotest.(check bool) "chance drops" true (fs.chance_drops > 0);
    Alcotest.(check bool) "burst drops" true (fs.burst_drops > 0);
    Alcotest.(check bool) "partition drops" true (fs.partition_drops > 0);
    Alcotest.(check bool) "crash drops" true (fs.crash_drops > 0));
  let cs = Sharded.churn_statistics a in
  Alcotest.(check bool) "churn happened" true (cs.Sharded.joins > 0)

(* The strict audit — extended ledger, dead-slot emptiness, M1 + parity —
   holds through the whole mixed regime. *)
let test_chaos_strict_audit () =
  let w = make_chaos_world ~resilience:(chaos_policy ()) () in
  let stats =
    Invariant.audited_sharded_run ~mode:Invariant.Strict ~scan_every:5
      ~domains:2 w ~rounds:40
  in
  Alcotest.(check int) "no violations" 0 stats.Invariant.violation_count;
  Alcotest.(check int) "all rounds audited" 40 stats.Invariant.actions_checked;
  Alcotest.(check bool) "scans ran" true (stats.Invariant.full_scans >= 8)

(* Per-shard Gilbert-Elliott chains at n = 10k: the empirical loss over
   the whole run converges to the injector's configured stationary mean,
   and a visible share of the drops lands inside bursts. *)
let test_ge_stationary_mean () =
  let w =
    Sharded.create ~shards:16 ~seed:5 ~n:10_000 ~config:scale_config
      ~scenario:(scenario "ge:0.2:8") ()
  in
  Sharded.run_rounds w ~domains:4 30;
  let wc = Sharded.world_counters w in
  let observed =
    float_of_int wc.Runner.messages_lost /. float_of_int wc.Runner.sends
  in
  Alcotest.(check bool)
    (Fmt.str "observed %.4f within 0.02 of 0.2" observed)
    true
    (Float.abs (observed -. 0.2) < 0.02);
  match Sharded.fault_statistics w with
  | None -> Alcotest.fail "scenario installed but no fault statistics"
  | Some fs ->
    let open Sf_faults.Injector in
    Alcotest.(check bool) "bursty drops recorded" true
      (fs.burst_drops > 0 && fs.burst_drops <= fs.chance_drops)

(* Churn end-to-end: the extended ledger ties the final edge count back
   to the initial ring, and one join per leave keeps the population
   stationary (up to donor-starved skips, which never fire at this n). *)
let test_churn_ledger_totals () =
  let w =
    Sharded.create ~shards:8 ~seed:19 ~n:600 ~config:scale_config
      ~churn:{ Sharded.churn_rate = 0.05; headroom = 80 }
      ()
  in
  let initial = Sharded.total_edges w in
  Sharded.run_rounds w ~domains:2 30;
  let l = Sharded.ledger w in
  Alcotest.(check int)
    "edges = initial + 2 dup - 2 dropped + added - removed"
    (initial
    + (2 * l.Sharded.accepted_duplications)
    - (2 * l.Sharded.dropped_non_duplicated)
    + l.Sharded.churn_edges_added - l.Sharded.churn_edges_removed)
    (Sharded.total_edges w);
  let cs = Sharded.churn_statistics w in
  Alcotest.(check bool) "turnover happened" true (cs.Sharded.leaves > 50);
  Alcotest.(check int) "one join per un-starved leave"
    (cs.Sharded.leaves - cs.Sharded.join_skips)
    cs.Sharded.joins;
  Alcotest.(check int) "population stationary"
    (600 - cs.Sharded.join_skips)
    (Sharded.live_count w)

(* Observe-only resilience consumes no randomness and never acts, so the
   chaotic world replays bit-for-bit against a policy-free twin while
   still producing a loss estimate. *)
let test_observe_only_resilience_identity () =
  let run resilience =
    let w = make_chaos_world ?resilience () in
    Sharded.run_rounds w ~domains:2 20;
    w
  in
  let plain = run None
  and obs = run (Some (Sf_resil.Policy.observe_only ())) in
  Alcotest.(check bool) "worlds bit-identical" true (Sharded.equal plain obs);
  Alcotest.(check bool) "thresholds untouched" true
    (Sharded.live_thresholds obs = (4, 12));
  (match Sharded.resilience_statistics plain with
  | None -> ()
  | Some _ -> Alcotest.fail "no policy installed but statistics reported");
  match Sharded.resilience_statistics obs with
  | None -> Alcotest.fail "observer installed but no statistics"
  | Some rs ->
    Alcotest.(check int) "no retunes" 0 rs.Runner.retunes;
    Alcotest.(check int) "no repairs" 0 rs.Runner.repair_attempts;
    Alcotest.(check bool) "estimator saw the loss" true
      (rs.Runner.loss_estimate > 0.)

(* --- live_nodes: incremental sorted array vs rebuild-and-sort --- *)

let test_live_nodes_incremental () =
  let r = make_system ~n:50 () in
  let module IntSet = Set.Make (Int) in
  let expected = ref IntSet.empty in
  for id = 0 to 49 do
    expected := IntSet.add id !expected
  done;
  let rng = Rng.create 99 in
  let check_snapshot () =
    let got =
      Array.to_list
        (Array.map (fun n -> n.Protocol.node_id) (Runner.live_nodes r))
    in
    (* The rebuild-and-sort baseline the incremental array must match. *)
    Alcotest.(check (list int)) "sorted live ids" (IntSet.elements !expected) got
  in
  for _ = 1 to 150 do
    if Rng.bernoulli rng 0.45 && IntSet.cardinal !expected > 5 then begin
      let live = Runner.live_nodes r in
      let victim = (Rng.choose rng live).Protocol.node_id in
      ignore (Runner.remove_node r victim);
      expected := IntSet.remove victim !expected
    end
    else begin
      let bootstrap = Runner.bootstrap_from r ~count:4 in
      let id = Runner.add_node r ~bootstrap in
      expected := IntSet.add id !expected
    end;
    check_snapshot ()
  done;
  Runner.run_rounds r 5;
  check_snapshot ()

(* --- Sampling: the allocation-free scan preserves the RNG stream --- *)

(* The historical implementation: fold the candidates into a list (highest
   slot first), then one [Rng.choose] over the materialized array. *)
let reference_sample ?(allow_self = false) runner rng ~node_id =
  match Runner.find_node runner node_id with
  | None -> None
  | Some node ->
    let candidates =
      View.fold
        (fun acc e ->
          if allow_self || e.View.id <> node_id then e.View.id :: acc else acc)
        [] node.Protocol.view
    in
    if candidates = [] then None
    else Some (Rng.choose rng (Array.of_list candidates))

let test_sample_matches_reference () =
  let r = make_system ~seed:3 ~n:60 ~loss:0.05 () in
  Runner.run_rounds r 10;
  let rng_new = Rng.create 123 and rng_ref = Rng.create 123 in
  for node_id = 0 to 59 do
    for _ = 1 to 5 do
      Alcotest.(check (option int))
        "same draw"
        (reference_sample r rng_ref ~node_id)
        (Sampling.sample r rng_new ~node_id)
    done
  done;
  for node_id = 0 to 9 do
    Alcotest.(check (option int))
      "same draw (allow_self)"
      (reference_sample ~allow_self:true r rng_ref ~node_id)
      (Sampling.sample ~allow_self:true r rng_new ~node_id)
  done;
  (* Equal stream positions afterwards: the rewrite consumed exactly the
     same randomness. *)
  Alcotest.(check int) "streams still aligned" (Rng.int rng_ref 1_000_000)
    (Rng.int rng_new 1_000_000)

let test_sample_many_contract () =
  let r = make_system ~n:40 () in
  Runner.run_rounds r 5;
  let rng = Rng.create 5 in
  let xs = Sampling.sample_many r rng ~node_id:0 ~k:10 in
  Alcotest.(check int) "k results on a populated view" 10 (List.length xs);
  List.iter
    (fun id ->
      Alcotest.(check bool) "valid non-self id" true (id >= 0 && id <> 0))
    xs;
  Alcotest.(check (list int))
    "unknown node: k failed attempts, empty result" []
    (Sampling.sample_many r rng ~node_id:9999 ~k:5);
  let lonely = Runner.add_node r ~bootstrap:[] in
  Alcotest.(check (list int))
    "empty view: every attempt fails, none aborts" []
    (Sampling.sample_many r rng ~node_id:lonely ~k:5);
  Alcotest.(check (list int)) "k = 0" [] (Sampling.sample_many r rng ~node_id:0 ~k:0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_degrees_match_recount;
    Alcotest.test_case "Par fork-join determinism" `Quick test_par_determinism;
    Alcotest.test_case "domain-count invariance" `Quick
      test_domain_count_invariance;
    Alcotest.test_case "sharded strict audit" `Quick test_sharded_strict_audit;
    Alcotest.test_case "edge ledger totals" `Quick test_edge_ledger_totals;
    Alcotest.test_case "chaos domain-count invariance" `Quick
      test_chaos_domain_invariance;
    Alcotest.test_case "chaos strict audit" `Quick test_chaos_strict_audit;
    Alcotest.test_case "GE stationary mean at 10k" `Slow test_ge_stationary_mean;
    Alcotest.test_case "churn ledger totals" `Quick test_churn_ledger_totals;
    Alcotest.test_case "observe-only resilience identity" `Quick
      test_observe_only_resilience_identity;
    Alcotest.test_case "incremental live array" `Quick
      test_live_nodes_incremental;
    Alcotest.test_case "sample preserves RNG stream" `Quick
      test_sample_matches_reference;
    Alcotest.test_case "sample_many contract" `Quick test_sample_many_contract;
  ]
