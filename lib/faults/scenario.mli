(** Declarative, deterministic fault plans.

    A scenario is a loss process plus a list of timed fault windows.  The
    same value drives both the discrete-event simulator
    ({!Sf_core.Runner}) and the real UDP cluster ({!Sf_net.Cluster}), so a
    fault experiment validated in simulation replays unchanged on real
    sockets.

    {2 Time}

    Window bounds are in {e rounds}, the paper's time unit (one round = one
    expected action per node).  Each driver supplies its own clock mapping
    to {!Injector.set_clock}: the sequential runner counts [actions / n],
    the timed runner uses virtual time (Poisson rate 1 ≈ one round per time
    unit), and the UDP cluster counts elapsed wall time over its firing
    period.

    {2 Textual syntax}

    [of_string] parses semicolon-separated items:

    - [iid] — the driver's configured uniform loss (the default);
    - [ge:MEAN:BURST] — Gilbert–Elliott bursty loss with stationary mean
      [MEAN] and mean burst length [BURST] sends;
    - [partition\@A-B:K] — from round [A] to round [B], drop every message
      between different blocks of a [K]-way split of the id space;
    - [crash\@A-B:LO-HI] — nodes [LO..HI] freeze at round [A] (no
      initiations, all messages to them dropped) and resume at round [B]
      with their stale views;
    - [delay\@A-B:F] — deliveries take [F]× the normal latency;
    - [corrupt\@A-B:R] — surviving messages are corrupted with probability
      [R] (the cluster flips datagram bytes to drive the codec error path;
      the simulator counts them as undecodable drops).

    Example:
    [ge:0.2:8;partition\@10-20:2;crash\@25-35:0-9;delay\@40-45:4;corrupt\@50-55:0.01] *)

type fault =
  | Partition of { parts : int }
      (** [K]-way split into contiguous blocks of the initial id space;
          ids beyond it (joiners) are mapped by [id mod n] *)
  | Crash of { first : int; last : int }  (** freeze node ids in [first..last] *)
  | Delay of { factor : float }           (** latency multiplier, > 0 *)
  | Corrupt of { rate : float }           (** per-message corruption probability *)

type window = { start : float; stop : float; fault : fault }
(** Half-open activity interval [[start, stop)] in rounds. *)

type t = { loss : Loss.model; windows : window list }

val default : t
(** [{ loss = Iid; windows = [] }] — drivers given this scenario behave
    byte-identically (same RNG stream, same results) to drivers given no
    scenario at all. *)

val make : ?loss:Loss.model -> ?windows:window list -> unit -> t
(** Validating constructor.  Raises [Invalid_argument] on a malformed
    window (negative times, [stop <= start], [parts < 2], [last < first],
    non-positive delay factor, corruption rate outside [0,1]), or when two
    crash windows overlap in time {e and} their node ranges intersect.
    Same-class windows without a node range may overlap freely: active
    partitions compose by OR, delay factors multiply, corruption takes the
    max. *)

val of_string : string -> (t, string) result
(** Parse the textual syntax above.  At most one loss item is allowed.
    Every window passes through {!validate_window} (and the crash-overlap
    check of {!make}), so parsed and programmatically built scenarios
    share one validation path and one set of error messages. *)

val to_string : t -> string
(** Render a scenario back to the textual syntax ([Per_link] loss, which
    carries a closure, renders as ["per-link"] and does not re-parse). *)

val pp : t Fmt.t

val fault_kind : fault -> string
(** ["partition"], ["crash"], ["delay"] or ["corrupt"]. *)

val validate_window : window -> unit
(** Raise [Invalid_argument] on a malformed window (see {!make}). *)
