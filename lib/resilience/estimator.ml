(* Online loss estimation from node-visible protocol signals.

   The paper's Lemma 6.6 balances the three per-send rates of a steady
   S&F system: duplication = loss + deletion.  Duplications and deletions
   are both *local* events — the sender knows when it duplicated (its
   outdegree sat at or below dL), the receiver knows when it deleted (its
   view was full) — while loss itself is invisible to everyone (the
   network model gives no feedback).  Inverting the balance therefore
   turns the two observable rates into a loss estimate:

     loss  ~=  duplications/sends - deletions/sends

   over a window of sends.  The estimator accumulates raw counter deltas
   until a window's worth of sends has been seen, folds the window's
   inverted rate into an EWMA, and exposes the smoothed estimate plus a
   confidence flag (at least one full window observed).  It consumes no
   randomness and performs O(1) work per observation, so attaching it to
   a driver cannot perturb an RNG stream. *)

type t = {
  window : int;       (* sends per estimation window *)
  smoothing : float;  (* EWMA weight of a fresh window in (0, 1] *)
  mutable acc_sends : int;
  mutable acc_duplications : int;
  mutable acc_deletions : int;
  mutable estimate : float;
  mutable windows : int;  (* completed windows folded so far *)
}

let create ?(window = 2000) ?(smoothing = 0.3) () =
  if window <= 0 then invalid_arg "Estimator.create: window must be positive";
  if smoothing <= 0. || smoothing > 1. then
    invalid_arg "Estimator.create: smoothing must lie in (0, 1]";
  {
    window;
    smoothing;
    acc_sends = 0;
    acc_duplications = 0;
    acc_deletions = 0;
    estimate = 0.;
    windows = 0;
  }

let window t = t.window

(* A raw window inversion can stray outside [0, 1) through sampling noise
   (more deletions than duplications in a quiet window); the clamp keeps
   the estimate a valid loss probability. *)
let clamp x = Float.max 0. (Float.min 0.99 x)

let fold_window t =
  let sends = float_of_int t.acc_sends in
  let raw =
    clamp
      (float_of_int (t.acc_duplications - t.acc_deletions) /. sends)
  in
  t.estimate <-
    (if t.windows = 0 then raw
     else ((1. -. t.smoothing) *. t.estimate) +. (t.smoothing *. raw));
  t.windows <- t.windows + 1;
  t.acc_sends <- 0;
  t.acc_duplications <- 0;
  t.acc_deletions <- 0

(* Feed counter *deltas* (not absolute totals) since the previous call.
   Several windows can complete in one large delta; each full window folds
   separately so the EWMA time constant is independent of the feeding
   cadence. *)
let observe t ~sends ~duplications ~deletions =
  if sends < 0 || duplications < 0 || deletions < 0 then
    invalid_arg "Estimator.observe: negative delta";
  t.acc_sends <- t.acc_sends + sends;
  t.acc_duplications <- t.acc_duplications + duplications;
  t.acc_deletions <- t.acc_deletions + deletions;
  while t.acc_sends >= t.window do
    (* Attribute the overflow proportionally: fold the full window with a
       pro-rata share of the event deltas, keep the remainder accumulating.
       For the driver cadences in this tree (many small deltas per window)
       the remainder is tiny and the split is exact in expectation. *)
    let over = t.acc_sends - t.window in
    if over = 0 then fold_window t
    else begin
      let share x = x * t.window / t.acc_sends in
      let keep_dup = t.acc_duplications - share t.acc_duplications in
      let keep_del = t.acc_deletions - share t.acc_deletions in
      t.acc_sends <- t.window;
      t.acc_duplications <- t.acc_duplications - keep_dup;
      t.acc_deletions <- t.acc_deletions - keep_del;
      fold_window t;
      t.acc_sends <- over;
      t.acc_duplications <- keep_dup;
      t.acc_deletions <- keep_del
    end
  done

let estimate t = t.estimate

let confident t = t.windows > 0

let windows t = t.windows
