(* Extension experiments beyond the paper's evaluation, each grounded in a
   claim the paper makes in passing:

   - G1: the membership graph's expander quality (section 2's motivation
     for uniform independent views: low diameter, robustness).
   - M1: mixing diagnostics of the degree MC (the computational face of
     temporal independence).
   - B3: persistent min-wise samples (Brahms, section 3.1) vs evolving S&F
     views — uniformity vs temporal independence.
   - B4: Cyclon's age-based target selection vs plain shuffle under churn
     (dead-id purging), and both vs S&F under loss.
   - P1: partition healing — two separately converged systems joined by a
     handful of edges blend into one uniform membership. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Properties = Sf_core.Properties
module Baselines = Sf_core.Baselines
module Minwise = Sf_core.Minwise
module View = Sf_core.View
module Quality = Sf_graph.Quality
module Summary = Sf_stats.Summary

let config = Protocol.make_config ~view_size:40 ~lower_threshold:18

let make_system ~seed ~n ~loss =
  let rng = Sf_prng.Rng.create (seed + 1) in
  let topology = Topology.regular rng ~n ~out_degree:30 in
  Runner.create ~seed ~n ~loss_rate:loss ~config ~topology ()

(* --- G1: expander quality --- *)

let graph_quality () =
  Output.section "G1" "Membership-graph quality (the section 2 expander motivation)";
  Fmt.pr
    "n=1000.  The steady-state S&F graph against a ring lattice with the@\n\
     same degree: diameter, average path length, clustering, and the giant@\n\
     component after random node removals.@.";
  let n = 1000 in
  let r = make_system ~seed:71 ~n ~loss:0.01 in
  Runner.run_rounds r 300;
  let sf_graph = Runner.membership_graph r in
  let ring_graph =
    let g = Sf_graph.Digraph.create () in
    let topo = Topology.ring ~n ~out_degree:27 in
    for u = 0 to n - 1 do
      Sf_graph.Digraph.ensure_vertex g u;
      List.iter (fun v -> Sf_graph.Digraph.add_edge g u v) (topo u)
    done;
    g
  in
  let rng = Sf_prng.Rng.create 72 in
  let describe name g =
    let paths = Quality.path_statistics ~sources:24 (Sf_prng.Rng.split rng) g in
    let clustering = Quality.clustering_coefficient g in
    ( name,
      paths,
      clustering,
      Quality.robustness_profile (Sf_prng.Rng.split rng) g
        ~removal_fractions:[ 0.1; 0.3; 0.5; 0.7 ] )
  in
  let rows = [ describe "S&F steady state" sf_graph; describe "ring lattice" ring_graph ] in
  Output.table
    [ "graph"; "diameter"; "avg path"; "clustering"; "giant@10%"; "giant@30%"; "giant@50%"; "giant@70%" ]
    (List.map
       (fun (name, paths, clustering, robustness) ->
         [ name; Output.i paths.Quality.estimated_diameter;
           Output.f2 paths.Quality.average_path_length; Output.f4 clustering ]
         @ List.map (fun (_, giant) -> Output.f3 giant) robustness)
       rows);
  let sf_paths, ring_paths =
    match rows with
    | [ (_, a, _, _); (_, b, _, _) ] -> (a, b)
    | _ -> assert false
  in
  Output.check "S&F diameter is logarithmic-scale (far below the lattice)"
    (sf_paths.Quality.estimated_diameter * 5 < ring_paths.Quality.estimated_diameter);
  let sf_robust =
    match rows with
    | [ (_, _, _, rob); _ ] -> List.assoc 0.5 rob
    | _ -> assert false
  in
  Output.check
    (Fmt.str "S&F survives 50%% random removals as one component (%.3f)" sf_robust)
    (sf_robust > 0.99)

(* --- M1: mixing of the degree MC --- *)

let degree_mc_mixing () =
  Output.section "M1" "Mixing diagnostics of the degree Markov chain";
  Fmt.pr
    "Per-state relaxation of the section 6.2 chain (dL=18, s=40): |lambda2|@\n\
     by the deflated power method, relaxation time, and distance profiles@\n\
     from extreme starting states.  One MC step = one action touching the@\n\
     tagged node (uniformized), so these are per-node timescales.@.";
  let rng = Sf_prng.Rng.create 73 in
  let rows =
    List.map
      (fun loss ->
        let mc =
          Sf_analysis.Degree_mc.solve
            (Sf_analysis.Degree_mc.make_params ~view_size:40 ~lower_threshold:18 ~loss ())
        in
        let chain = Sf_analysis.Degree_mc.to_chain mc in
        let lambda =
          Sf_markov.Mixing.second_eigenvalue_estimate chain
            ~stationary:mc.Sf_analysis.Degree_mc.joint
            ~uniform:(fun () -> Sf_prng.Rng.float rng)
        in
        (loss, mc, chain, lambda))
      [ 0.01; 0.05 ]
  in
  Output.table
    [ "loss"; "|lambda2|"; "relaxation (steps)" ]
    (List.map
       (fun (loss, _, _, lambda) ->
         [
           Output.f2 loss;
           Output.f4 lambda;
           (if lambda >= 1. then "inf" else Output.f2 (1. /. (1. -. lambda)));
         ])
       rows);
  (match rows with
  | (_, mc, chain, _) :: _ ->
    let size = Sf_markov.Chain.size chain in
    (* Start from the corner states: minimal and maximal degrees. *)
    let state_index target =
      let found = ref 0 in
      Array.iteri
        (fun i st -> if st = target then found := i)
        mc.Sf_analysis.Degree_mc.states;
      !found
    in
    let extremes =
      [ ("start (18,0)", state_index (18, 0)); ("start (40,40)", state_index (40, 40)) ]
    in
    let checkpoints = [ 0; 50; 100; 200; 400; 800; 1600 ] in
    Output.subsection "TVD to stationarity from extreme states";
    Output.table
      ([ "steps" ] @ List.map fst extremes)
      (List.map
         (fun step ->
           Output.i step
           :: List.map
                (fun (_, idx) ->
                  let profile =
                    Sf_markov.Mixing.distance_profile chain
                      ~initial:(Sf_markov.Chain.point_distribution ~size idx)
                      ~stationary:mc.Sf_analysis.Degree_mc.joint ~checkpoints:[ step ]
                  in
                  Output.f3 profile.Sf_markov.Mixing.tv_distances.(0))
                extremes)
         checkpoints);
    let lambda = (match rows with (_, _, _, l) :: _ -> l | [] -> 1.) in
    Output.check "chain contracts (|lambda2| < 1)" (lambda < 1.)
  | [] -> ())

(* --- B3: min-wise samples vs evolving views --- *)

let minwise_vs_views () =
  Output.section "B3" "Persistent min-wise samples (Brahms) vs evolving views";
  Fmt.pr
    "n=600, loss=1%%.  Each node feeds its view stream through 8 min-wise@\n\
     samplers.  Uniformity: both mechanisms pass; temporal independence:@\n\
     converged samples freeze while views keep evolving — the section 3.1@\n\
     trade-off.@.";
  let n = 600 in
  let r = make_system ~seed:81 ~n ~loss:0.01 in
  Runner.run_rounds r 100;
  let fleet = Minwise.create_fleet (Sf_prng.Rng.create 82) ~k:8 in
  (* Convergence phase: long enough for each node's stream to have covered
     most of the id space, so the min-hash winners are mostly final. *)
  for _ = 1 to 400 do
    Runner.run_rounds r 1;
    Minwise.feed_from_views fleet r
  done;
  let reference = Minwise.raw_snapshot fleet in
  let view_reference = Hashtbl.create n in
  Array.iter
    (fun node ->
      Hashtbl.replace view_reference node.Protocol.node_id
        (List.sort compare (View.ids node.Protocol.view)))
    (Runner.live_nodes r);
  (* Another 100 rounds of evolution. *)
  for _ = 1 to 100 do
    Runner.run_rounds r 1;
    Minwise.feed_from_views fleet r
  done;
  let frozen = Minwise.unchanged_fraction fleet ~reference in
  let views_frozen =
    let unchanged = ref 0 and total = ref 0 in
    Array.iter
      (fun node ->
        match Hashtbl.find_opt view_reference node.Protocol.node_id with
        | None -> ()
        | Some old ->
          incr total;
          if List.sort compare (View.ids node.Protocol.view) = old then incr unchanged)
      (Runner.live_nodes r);
    float_of_int !unchanged /. float_of_int (max 1 !total)
  in
  (* Uniformity of the sampler outputs. *)
  let counts = Array.make n 0. in
  Hashtbl.iter
    (fun _ samples ->
      List.iter (fun id -> if id < n then counts.(id) <- counts.(id) +. 1.) samples)
    (Minwise.snapshot fleet);
  let chi = Sf_stats.Hypothesis.chi_square_uniform counts in
  Output.table
    [ "metric"; "min-wise samples"; "S&F views" ]
    [
      [ "unchanged after 100 rounds"; Output.f3 frozen; Output.f3 views_frozen ];
      [ "uniformity p-value"; Output.f4 chi.Sf_stats.Hypothesis.p_value; "(see L7.6)" ];
    ];
  Output.check "samples are near-uniform (p > 0.001)"
    (chi.Sf_stats.Hypothesis.p_value > 0.001);
  Output.check
    (Fmt.str "samples persist (%.2f frozen) while views evolve (%.2f frozen)" frozen
       views_frozen)
    (frozen > 0.7 && views_frozen < 0.05)

(* --- B4: Cyclon's age rule under churn --- *)

let cyclon_age_rule () =
  Output.section "B4" "Cyclon's age-based target selection under churn";
  Fmt.pr
    "n=400, s=40, no loss; rolling churn (one kill per round, 40-node dead@\n\
     window, revived nodes re-bootstrap with 20 ids), 150 rounds, averaged@\n\
     over 3 seeds.  Age-based (oldest-first) targeting purges entries@\n\
     pointing at dead nodes faster than random targeting — and both@\n\
     delete-on-send protocols bleed edges from exchanges aimed at dead@\n\
     nodes, the fragility section 3.1 attributes to them.@.";
  let n = 400 in
  let topology seed = Topology.regular (Sf_prng.Rng.create seed) ~n ~out_degree:20 in
  let run kind seed =
    let b =
      Baselines.create ~seed ~n ~view_size:40 ~loss_rate:0. ~kind ~topology:(topology seed)
    in
    let churn_rng = Sf_prng.Rng.create (seed + 7) in
    Baselines.run_rounds b 50;
    let dead_queue = Queue.create () in
    for _round = 1 to 150 do
      let rec pick_live () =
        let candidate = Sf_prng.Rng.int churn_rng n in
        if Baselines.is_dead b candidate then pick_live () else candidate
      in
      let victim = pick_live () in
      Baselines.kill b victim;
      Queue.push victim dead_queue;
      if Queue.length dead_queue > 40 then
        Baselines.revive b (Queue.pop dead_queue) ~bootstrap:20;
      Baselines.run_rounds b 1
    done;
    (Baselines.dead_entry_fraction b, Baselines.total_instances b)
  in
  let average kind seeds =
    let results = List.map (run kind) seeds in
    let stale =
      List.fold_left (fun acc (st, _) -> acc +. st) 0. results
      /. float_of_int (List.length results)
    in
    let edges =
      List.fold_left (fun acc (_, e) -> acc + e) 0 results / List.length results
    in
    (stale, edges)
  in
  let seeds = [ 91; 191; 391 ] in
  let shuffle_stale, shuffle_edges = average (Baselines.Shuffle { exchange_size = 4 }) seeds in
  let cyclon_stale, cyclon_edges =
    average (Baselines.Cyclon { exchange_size = 4 }) (List.map (fun s -> s + 1000) seeds)
  in
  Output.table
    [ "protocol"; "stale-entry fraction"; "edges (of 8000 initial)" ]
    [
      [ "shuffle (random target)"; Output.f4 shuffle_stale; Output.i shuffle_edges ];
      [ "cyclon (oldest target)"; Output.f4 cyclon_stale; Output.i cyclon_edges ];
    ];
  Output.check
    (Fmt.str "age rule purges stale entries faster (%.4f < %.4f)" cyclon_stale shuffle_stale)
    (cyclon_stale < shuffle_stale);
  Output.check
    "delete-on-send bleeds edges under churn even without loss (section 3.1)"
    (shuffle_edges < 8000 / 2 && cyclon_edges < 8000 / 2)

(* --- P1: partition healing --- *)

let partition_healing () =
  Output.section "P1" "Partition healing: two converged systems blend into one";
  Fmt.pr
    "Two 300-node S&F systems converge separately inside one 600-node id@\n\
     space, then 10 bridge edges are added.  Views mix across the old@\n\
     boundary until the cross fraction reaches the uniform expectation@\n\
     (~0.5) — Property M3's \"from any sufficiently connected initial@\n\
     topology\".@.";
  let n = 600 and half = 300 in
  (* One runner whose initial topology is two disjoint regular halves. *)
  let rng = Sf_prng.Rng.create 95 in
  let topo_a = Topology.regular (Sf_prng.Rng.split rng) ~n:half ~out_degree:20 in
  let topo_b = Topology.regular (Sf_prng.Rng.split rng) ~n:half ~out_degree:20 in
  let topology u = if u < half then topo_a u else List.map (fun v -> v + half) (topo_b (u - half)) in
  let r = Runner.create ~seed:96 ~n ~loss_rate:0.01 ~config ~topology () in
  (* Let the halves converge in isolation (they cannot see each other). *)
  Runner.run_rounds r 200;
  let cross_fraction () =
    let cross = ref 0 and total = ref 0 in
    Array.iter
      (fun node ->
        let side = node.Protocol.node_id < half in
        View.iter
          (fun _ e ->
            incr total;
            if (e.View.id < half) <> side then incr cross)
          node.Protocol.view)
      (Runner.live_nodes r);
    float_of_int !cross /. float_of_int (max 1 !total)
  in
  let before = cross_fraction () in
  (* Bridge: 10 nodes of each half learn one id of the other half. *)
  let bridge_rng = Sf_prng.Rng.create 97 in
  for _ = 1 to 10 do
    let a = Sf_prng.Rng.int bridge_rng half in
    let b = half + Sf_prng.Rng.int bridge_rng half in
    match Runner.find_node r a with
    | Some node ->
      (match View.random_empty_slot node.Protocol.view bridge_rng with
      | Some slot ->
        View.set node.Protocol.view slot { View.id = b; serial = 0; anchor = None; born = 0 };
        (* Keep the outdegree even with a second bridge edge. *)
        (match View.random_empty_slot node.Protocol.view bridge_rng with
        | Some slot2 ->
          View.set node.Protocol.view slot2
            { View.id = half + Sf_prng.Rng.int bridge_rng half; serial = 0; anchor = None; born = 0 }
        | None -> ())
      | None -> ())
    | None -> ()
  done;
  let points = ref [ (0, cross_fraction ()) ] in
  List.iter
    (fun chunk ->
      Runner.run_rounds r chunk;
      points := (Runner.action_count r / n, cross_fraction ()) :: !points)
    [ 25; 25; 50; 100; 200; 400 ];
  let points = List.rev !points in
  Output.table
    [ "round (cumulative)"; "cross-partition view fraction" ]
    (List.map (fun (round, f) -> [ Output.i round; Output.f3 f ]) points);
  Fmt.pr "  before bridging: %.4f@." before;
  let final = match List.rev points with (_, f) :: _ -> f | [] -> 0. in
  Output.check
    (Fmt.str "views blend toward the uniform 0.5 cross fraction (%.3f)" final)
    (final > 0.4 && final < 0.6);
  Output.check "system is one weakly connected component"
    (Properties.is_weakly_connected r)
