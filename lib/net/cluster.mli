(** A real S&F deployment over UDP on the loopback interface: one datagram
    socket per node, jittered periodic initiations, a select-based driver —
    the paper's "practical implementation" on an actual network stack.

    Intended for moderate cluster sizes (select(2) limits the driver to a
    few hundred sockets per process). *)

type t

val create :
  ?period:float ->
  ?now:(unit -> float) ->
  base_port:int ->
  n:int ->
  config:Sf_core.Protocol.config ->
  loss_rate:float ->
  seed:int ->
  topology:Sf_core.Topology.t ->
  unit ->
  t
(** Bind [n] UDP sockets on 127.0.0.1 ports [base_port .. base_port+n-1]
    and seed the views from [topology]. [period] is the mean time between a
    node's initiations in seconds (default 10 ms). [loss_rate] is injected
    at the sender (loopback UDP rarely drops on its own). [now] is the
    clock driving timers and deadlines — the wall clock by default; inject
    a virtual clock to make runs time-deterministic in tests. *)

val node_count : t -> int

val run : t -> duration:float -> unit
(** Drive the cluster for [duration] wall-clock seconds. *)

val shutdown : t -> unit
(** Close every socket. *)

val outdegree_summary : t -> Sf_stats.Summary.t
val independence_census : t -> Sf_core.Census.t
val membership_graph : t -> Sf_graph.Digraph.t
val is_weakly_connected : t -> bool

type statistics = {
  actions : int;
  datagrams_sent : int;
  datagrams_dropped : int;   (** injected loss *)
  datagrams_received : int;
  decode_errors : int;
  send_errors : int;
}

val statistics : t -> statistics
