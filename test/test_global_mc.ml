(* Tests for the exact global Markov chain (section 7.1) on tiny systems. *)

module Global_mc = Sf_analysis.Global_mc

let no_loss_params =
  { Global_mc.n = 3; view_size = 6; lower_threshold = 0; loss = 0. }

let triangle = [ [ 1; 2 ]; [ 0; 2 ]; [ 0; 1 ] ]

let test_transitions_are_stochastic () =
  let total =
    List.fold_left (fun acc (_, p) -> acc +. p) 0.
      (Global_mc.transitions no_loss_params triangle)
  in
  Alcotest.(check bool) "sum to 1" true (Float.abs (total -. 1.) < 1e-12)

let test_connectivity_predicate () =
  Alcotest.(check bool) "triangle connected" true
    (Global_mc.is_weakly_connected_state ~n:3 triangle);
  Alcotest.(check bool) "isolated node" false
    (Global_mc.is_weakly_connected_state ~n:3 [ [ 1 ]; [ 0 ]; [] ]);
  (* Self-edges only do not connect a node to the rest. *)
  Alcotest.(check bool) "self-edges only" false
    (Global_mc.is_weakly_connected_state ~n:3 [ [ 1 ]; [ 0 ]; [ 2; 2 ] ])

let test_no_loss_chain_lemma_7_5 () =
  (* Lemma 7.5 (exact form): the stationary distribution is uniform over
     instance-labeled membership graphs of the sum-degree class. *)
  let r = Global_mc.explore no_loss_params ~initial:triangle in
  Alcotest.(check bool) "ergodic (Lemma A.2)" true r.Global_mc.is_ergodic;
  let ratio = Global_mc.labeled_uniformity_ratio r in
  Alcotest.(check bool) (Printf.sprintf "labeled uniformity ratio %.6f" ratio) true
    (Float.abs (ratio -. 1.) < 1e-6);
  (* Lemma 7.6: every id equally likely in every other view. *)
  let spread = Global_mc.edge_probability_spread r in
  Alcotest.(check bool) (Printf.sprintf "edge spread %.6f" spread) true
    (Float.abs (spread -. 1.) < 1e-6)

let test_no_loss_chain_preserves_sum_degrees () =
  let r = Global_mc.explore no_loss_params ~initial:triangle in
  (* Every reachable state keeps ds(u) = d(u) + 2 din(u) = 6 (Lemma 6.2),
     where din(u) counts u's occurrences across all views. *)
  Array.iter
    (fun st ->
      List.iteri
        (fun u view ->
          let d = List.length view in
          let din =
            List.fold_left
              (fun acc view' -> acc + List.length (List.filter (( = ) u) view'))
              0 st
          in
          Alcotest.(check int) "ds = 6" 6 (d + (2 * din)))
        st)
    r.Global_mc.states

let test_lossy_chain_lemma_7_6 () =
  (* With loss and duplication the stationary distribution is no longer
     uniform, but uniformity of edge probabilities (Lemma 7.6) survives by
     symmetry. Small s keeps the state space tractable. *)
  let p = { Global_mc.n = 3; view_size = 4; lower_threshold = 2; loss = 0.1 } in
  let r = Global_mc.explore p ~initial:triangle in
  Alcotest.(check bool) "ergodic under loss (Lemma 7.1)" true r.Global_mc.is_ergodic;
  let spread = Global_mc.edge_probability_spread r in
  Alcotest.(check bool) (Printf.sprintf "edge spread %.6f" spread) true
    (Float.abs (spread -. 1.) < 1e-5);
  Alcotest.(check bool) "views not empty on average" true (r.Global_mc.mean_entries > 1.)

let test_explore_rejects_bad_initial () =
  Alcotest.(check bool) "disconnected initial rejected" true
    (match Global_mc.explore no_loss_params ~initial:[ [ 1 ]; [ 0 ]; [] ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_max_states_guard () =
  let p = { Global_mc.n = 3; view_size = 4; lower_threshold = 2; loss = 0.1 } in
  Alcotest.(check bool) "guard trips" true
    (match Global_mc.explore ~max_states:10 p ~initial:triangle with
    | exception Global_mc.Too_many_states _ -> true
    | _ -> false)

let test_multiplicity_correction () =
  Alcotest.(check bool) "all distinct" true
    (Global_mc.multiplicity_correction triangle = 1.);
  Alcotest.(check bool) "triple + pair" true
    (Global_mc.multiplicity_correction [ [ 1; 1; 1 ]; [ 2; 2 ]; [] ] = 12.)

let suite =
  [
    Alcotest.test_case "transitions stochastic" `Quick test_transitions_are_stochastic;
    Alcotest.test_case "connectivity predicate" `Quick test_connectivity_predicate;
    Alcotest.test_case "Lemmas 7.5/7.6 (no loss, exact)" `Quick test_no_loss_chain_lemma_7_5;
    Alcotest.test_case "Lemma 6.2 on reachable states" `Quick test_no_loss_chain_preserves_sum_degrees;
    Alcotest.test_case "Lemmas 7.1/7.6 under loss (exact)" `Slow test_lossy_chain_lemma_7_6;
    Alcotest.test_case "bad initial state" `Quick test_explore_rejects_bad_initial;
    Alcotest.test_case "state-count guard" `Quick test_max_states_guard;
    Alcotest.test_case "multiplicity correction" `Quick test_multiplicity_correction;
  ]
