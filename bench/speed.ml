(* Bechamel micro-benchmarks: one Test.make per reproduced table/figure,
   timing the hot computation behind that experiment.  These quantify the
   cost of the machinery (protocol step, receive path, census, MC solves),
   not the paper's results themselves. *)

open Bechamel
open Toolkit

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology

let config = Protocol.make_config ~view_size:40 ~lower_threshold:18

let prepared_system loss =
  let rng = Sf_prng.Rng.create 3 in
  let topology = Topology.regular rng ~n:500 ~out_degree:30 in
  let r = Runner.create ~seed:4 ~n:500 ~loss_rate:loss ~config ~topology () in
  Runner.run_rounds r 100;
  r

let tests () =
  let sim = prepared_system 0.05 in
  let sim_no_loss = prepared_system 0. in
  let analytic_dist = Sf_analysis.Analytic.outdegree_distribution ~dm:90 in
  let rw_rng = Sf_prng.Rng.create 5 in
  [
    (* F5.2: one protocol action (initiate + synchronous receive). *)
    Test.make ~name:"F5.2 protocol action" (Staged.stage (fun () -> Runner.step sim));
    (* F6.1: the analytic distribution of eq (6.1). *)
    Test.make ~name:"F6.1 eq-6.1 distribution"
      (Staged.stage (fun () ->
           ignore (Sf_analysis.Analytic.outdegree_distribution ~dm:90)));
    (* T6.3: threshold selection. *)
    Test.make ~name:"T6.3 threshold selection"
      (Staged.stage (fun () -> ignore (Sf_analysis.Thresholds.select ~d_hat:30 ~delta:0.01)));
    (* F6.3/L6.6: one full round of the loss simulation. *)
    Test.make ~name:"F6.3 simulation round"
      (Staged.stage (fun () -> Runner.run_rounds sim 1));
    (* F6.4: the decay curve. *)
    Test.make ~name:"F6.4 decay curve"
      (Staged.stage (fun () ->
           let p =
             Sf_analysis.Decay.make_params ~loss:0.01 ~delta:0.01 ~lower_threshold:18
               ~view_size:40
           in
           ignore (Sf_analysis.Decay.survival_curve p ~rounds:500)));
    (* L7.6: the uniformity accumulation primitive (membership snapshot). *)
    Test.make ~name:"L7.6 membership snapshot"
      (Staged.stage (fun () -> ignore (Runner.membership_graph sim_no_loss)));
    (* F7.1: the dependence census. *)
    Test.make ~name:"F7.1 dependence census"
      (Staged.stage (fun () -> ignore (Sf_core.Properties.independence_census sim)));
    (* T7.4: the connectivity rule's deep binomial tail. *)
    Test.make ~name:"T7.4 connectivity rule"
      (Staged.stage (fun () ->
           ignore
             (Sf_analysis.Connectivity.minimal_lower_threshold ~alpha:0.96 ~epsilon:1e-30 ())));
    (* L7.15: tau_eps evaluation. *)
    Test.make ~name:"L7.15 tau_eps"
      (Staged.stage (fun () ->
           let p =
             Sf_analysis.Temporal.make_params ~n:100_000 ~view_size:40
               ~expected_outdegree:27. ~alpha:0.96
           in
           ignore (Sf_analysis.Temporal.tau_epsilon p ~epsilon:0.01)));
    (* B2: one random walk. *)
    Test.make ~name:"B2 random walk (len 20)"
      (Staged.stage (fun () ->
           ignore
             (Sf_core.Random_walk.walk sim rw_rng ~start:0 ~length:20 ~loss_rate:0.05)));
    (* Reference point for the pmf machinery used throughout. *)
    Test.make ~name:"pmf tv-distance"
      (Staged.stage (fun () -> ignore (Sf_stats.Pmf.tv_distance analytic_dist analytic_dist)));
  ]

let run () =
  Output.section "SPEED" "Bechamel micro-benchmarks (one per experiment)";
  Fmt.pr "Monotonic-clock time per run, ordinary least squares estimate.@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let grouped = Test.make_grouped ~name:"repro" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some (x :: _) -> x
        | _ -> Float.nan
      in
      rows := (name, estimate) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Output.table
    [ "benchmark"; "time per run" ]
    (List.map
       (fun (name, ns) ->
         let pretty =
           if Float.is_nan ns then "n/a"
           else if ns >= 1e9 then Fmt.str "%.2f s" (ns /. 1e9)
           else if ns >= 1e6 then Fmt.str "%.2f ms" (ns /. 1e6)
           else if ns >= 1e3 then Fmt.str "%.2f us" (ns /. 1e3)
           else Fmt.str "%.0f ns" ns
         in
         [ name; pretty ])
       rows)
