(* Tests for the statistics substrate: special functions, pmfs, binomials,
   summaries, hypothesis tests. *)

module Special = Sf_stats.Special
module Pmf = Sf_stats.Pmf
module Binomial = Sf_stats.Binomial
module Summary = Sf_stats.Summary
module Hypothesis = Sf_stats.Hypothesis

let close ?(eps = 1e-9) what expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g, got %.12g" what expected actual)
    true
    (Float.abs (expected -. actual) <= eps *. (1. +. Float.abs expected))

(* --- Special functions --- *)

let test_log_gamma_known_values () =
  close "lgamma(1)" 0. (Special.log_gamma 1.);
  close "lgamma(2)" 0. (Special.log_gamma 2.);
  close "lgamma(5) = ln 24" (log 24.) (Special.log_gamma 5.);
  close "lgamma(0.5) = ln sqrt(pi)" (0.5 *. log Float.pi) (Special.log_gamma 0.5);
  (* Reflection-formula territory. *)
  close ~eps:1e-10 "lgamma(0.1)" 2.2527126517342059 (Special.log_gamma 0.1)

let test_log_factorial () =
  close "0!" 0. (Special.log_factorial 0);
  close "1!" 0. (Special.log_factorial 1);
  close "10!" (log 3628800.) (Special.log_factorial 10);
  (* Beyond the memo cache. *)
  close ~eps:1e-10 "2000! via Stirling continuity"
    (Special.log_gamma 2001.)
    (Special.log_factorial 2000)

let test_log_choose () =
  close "C(10,3)" (log 120.) (Special.log_choose 10 3);
  close "C(n,k) = C(n,n-k)" (Special.log_choose 50 13) (Special.log_choose 50 37);
  Alcotest.(check bool) "k out of range" true (Special.log_choose 5 7 = neg_infinity);
  Alcotest.(check bool) "negative k" true (Special.log_choose 5 (-1) = neg_infinity);
  (* Large case against direct accumulation: ln C(n,k) = sum ln((n-k+i)/i). *)
  let direct = ref 0. in
  for i = 1 to 45 do
    direct := !direct +. log (float_of_int (45 + i) /. float_of_int i)
  done;
  close "C(90,45) large" !direct (Special.log_choose 90 45) ~eps:1e-10

let test_gamma_p_q_complementarity () =
  List.iter
    (fun (a, x) ->
      close ~eps:1e-10
        (Printf.sprintf "P+Q=1 at a=%.1f x=%.1f" a x)
        1.
        (Special.gamma_p a x +. Special.gamma_q a x))
    [ (0.5, 0.3); (1., 1.); (2.5, 4.); (10., 3.); (10., 30.) ]

let test_gamma_p_exponential_special_case () =
  (* P(1, x) = 1 - exp(-x). *)
  List.iter
    (fun x -> close ~eps:1e-10 "P(1,x)" (1. -. exp (-.x)) (Special.gamma_p 1. x))
    [ 0.1; 1.; 2.; 5. ]

let test_log_add () =
  close "log_add basic" (log 3.) (Special.log_add (log 1.) (log 2.));
  close "log_add with -inf" (log 2.) (Special.log_add neg_infinity (log 2.));
  close "log_sum" (log 6.) (Special.log_sum [| log 1.; log 2.; log 3. |])

(* --- Pmf --- *)

let test_pmf_basic () =
  let p = Pmf.create ~offset:2 [| 0.2; 0.3; 0.5 |] in
  close "prob at 2" 0.2 (Pmf.prob p 2);
  close "prob at 4" 0.5 (Pmf.prob p 4);
  close "prob outside" 0. (Pmf.prob p 5);
  close "total" 1. (Pmf.total p);
  close "mean" ((2. *. 0.2) +. (3. *. 0.3) +. (4. *. 0.5)) (Pmf.mean p);
  Alcotest.(check int) "mode" 4 (Pmf.mode p);
  close "cdf at 3" 0.5 (Pmf.cdf p 3);
  close "ccdf at 3" 0.8 (Pmf.ccdf p 3)

let test_pmf_normalize () =
  let p = Pmf.normalize (Pmf.create ~offset:0 [| 1.; 3. |]) in
  close "normalized" 0.25 (Pmf.prob p 0);
  Alcotest.check_raises "zero mass rejected"
    (Invalid_argument "Pmf.normalize: zero total mass") (fun () ->
      ignore (Pmf.normalize (Pmf.create ~offset:0 [| 0.; 0. |])))

let test_pmf_variance () =
  (* Fair coin on {0,1}: variance 1/4. *)
  let p = Pmf.create ~offset:0 [| 0.5; 0.5 |] in
  close "variance" 0.25 (Pmf.variance p);
  close "std" 0.5 (Pmf.std p)

let test_pmf_tv_distance () =
  let a = Pmf.create ~offset:0 [| 1.; 0. |] in
  let b = Pmf.create ~offset:0 [| 0.; 1. |] in
  close "disjoint -> 1" 1. (Pmf.tv_distance a b);
  close "identical -> 0" 0. (Pmf.tv_distance a a);
  (* Different supports. *)
  let c = Pmf.create ~offset:5 [| 1. |] in
  close "disjoint supports -> 1" 1. (Pmf.tv_distance a c)

let test_pmf_condition () =
  let p = Pmf.create ~offset:0 [| 0.25; 0.25; 0.25; 0.25 |] in
  let even = Pmf.condition p (fun k -> k mod 2 = 0) in
  close "conditioned mass" 0.5 (Pmf.prob even 0);
  close "odd points dropped" 0. (Pmf.prob even 1)

let test_pmf_of_assoc_accumulates () =
  let p = Pmf.of_assoc [ (3, 0.5); (3, 0.25); (5, 0.25) ] in
  close "accumulated" 0.75 (Pmf.prob p 3);
  Alcotest.(check int) "offset" 3 (Pmf.offset p)

let test_pmf_of_samples () =
  let p = Pmf.of_samples [| 1; 1; 2; 4 |] in
  close "1 freq" 0.5 (Pmf.prob p 1);
  close "4 freq" 0.25 (Pmf.prob p 4);
  close "3 absent" 0. (Pmf.prob p 3)

(* --- Binomial --- *)

let test_binomial_pmf_sums_to_one () =
  let total = ref 0. in
  for k = 0 to 30 do
    total := !total +. Binomial.pmf ~n:30 ~p:0.4 k
  done;
  close ~eps:1e-10 "sum" 1. !total

let test_binomial_moments () =
  close "mean" 12. (Binomial.mean ~n:30 ~p:0.4);
  close "variance" 7.2 (Binomial.variance ~n:30 ~p:0.4);
  let pmf = Binomial.to_pmf ~n:30 ~p:0.4 in
  close ~eps:1e-9 "pmf mean" 12. (Pmf.mean pmf);
  close ~eps:1e-9 "pmf variance" 7.2 (Pmf.variance pmf)

let test_binomial_cdf_consistency () =
  for k = 0 to 20 do
    close ~eps:1e-9
      (Printf.sprintf "cdf+ccdf-pmf at %d" k)
      1.
      (Binomial.cdf ~n:20 ~p:0.3 k +. Binomial.ccdf ~n:20 ~p:0.3 k
      -. Binomial.pmf ~n:20 ~p:0.3 k)
  done

let test_binomial_log_cdf_deep_tail () =
  (* The section 7.4 regime: Binomial(26, 0.96) <= 2 is around 1e-31;
     linear-space summation would underflow to garbage relative error. *)
  let log_p = Binomial.log_cdf ~n:26 ~p:0.96 2 in
  Alcotest.(check bool) "deep tail magnitude" true (log_p < log 1e-30 && log_p > log 1e-33);
  (* Exact formula for k <= 2. *)
  let q = 0.04 and p = 0.96 in
  let exact =
    (q ** 26.) +. (26. *. p *. (q ** 25.)) +. (325. *. (p ** 2.) *. (q ** 24.))
  in
  close ~eps:1e-9 "matches closed form" (log exact) log_p

let test_binomial_degenerate () =
  close "p=0 pmf(0)" 1. (Binomial.pmf ~n:10 ~p:0. 0);
  close "p=1 pmf(n)" 1. (Binomial.pmf ~n:10 ~p:1. 10);
  close "p=1 pmf(0)" 0. (Binomial.pmf ~n:10 ~p:1. 0)

let test_binomial_sampling () =
  let rng = Sf_prng.Rng.create 42 in
  let s = Summary.create () in
  for _ = 1 to 20_000 do
    Summary.add_int s (Binomial.sample rng ~n:40 ~p:0.25)
  done;
  Alcotest.(check bool) "sample mean near 10" true
    (Float.abs (Summary.mean s -. 10.) < 0.1)

(* --- Summary --- *)

let test_summary_against_direct () =
  let xs = [| 1.; 2.; 3.; 4.; 5.; 6.; 7. |] in
  let s = Summary.of_array xs in
  close "mean" 4. (Summary.mean s);
  close "variance" (28. /. 6.) (Summary.variance s);
  close "population variance" 4. (Summary.variance_population s);
  close "min" 1. (Summary.min_value s);
  close "max" 7. (Summary.max_value s);
  Alcotest.(check int) "count" 7 (Summary.count s)

let test_summary_merge () =
  let a = Summary.of_array [| 1.; 2.; 3. |] in
  let b = Summary.of_array [| 10.; 20. |] in
  let merged = Summary.merge a b in
  let direct = Summary.of_array [| 1.; 2.; 3.; 10.; 20. |] in
  close "merged mean" (Summary.mean direct) (Summary.mean merged);
  close "merged variance" (Summary.variance direct) (Summary.variance merged);
  close "merged max" 20. (Summary.max_value merged)

let test_percentile () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  close "median" 3. (Summary.percentile xs 0.5);
  close "p0" 1. (Summary.percentile xs 0.);
  close "p100" 5. (Summary.percentile xs 1.);
  close "p25" 2. (Summary.percentile xs 0.25)

(* --- Hypothesis tests --- *)

let test_chi_square_uniform_accepts_uniform () =
  let counts = Array.make 10 1000. in
  let r = Hypothesis.chi_square_uniform counts in
  close "statistic 0" 0. r.Hypothesis.statistic;
  Alcotest.(check bool) "p = 1" true (r.Hypothesis.p_value > 0.999)

let test_chi_square_uniform_rejects_skew () =
  let counts = [| 1000.; 10.; 10.; 10.; 10. |] in
  let r = Hypothesis.chi_square_uniform counts in
  Alcotest.(check bool) "tiny p-value" true (r.Hypothesis.p_value < 1e-6)

let test_chi_square_pooling () =
  (* Cells with tiny expectation get pooled rather than dominating. *)
  let observed = [| 50.; 50.; 0.1 |] in
  let expected = [| 50.; 50.; 0.05 |] in
  let r = Hypothesis.chi_square ~observed ~expected () in
  Alcotest.(check bool) "pooled dof < raw cells" true (r.Hypothesis.degrees_of_freedom <= 2)

let test_ks_identical () =
  let a = [| 1; 2; 3; 4; 5 |] in
  close "D = 0" 0. (Hypothesis.ks_statistic a a);
  Alcotest.(check bool) "p = 1" true (Hypothesis.ks_p_value a a > 0.999)

let test_ks_disjoint () =
  let a = Array.make 100 0 and b = Array.make 100 10 in
  close "D = 1" 1. (Hypothesis.ks_statistic a b);
  Alcotest.(check bool) "p tiny" true (Hypothesis.ks_p_value a b < 1e-6)

(* --- Properties --- *)

let pmf_gen =
  QCheck.Gen.(
    map2
      (fun offset mass -> (offset, Array.of_list (List.map (fun x -> Float.abs x +. 0.01) mass)))
      (int_range (-10) 10)
      (list_size (int_range 1 20) (float_bound_exclusive 10.)))

let prop_normalize_total =
  QCheck.Test.make ~name:"Pmf.normalize yields total 1" ~count:200
    (QCheck.make pmf_gen) (fun (offset, mass) ->
      let p = Pmf.normalize (Pmf.create ~offset mass) in
      Float.abs (Pmf.total p -. 1.) < 1e-9)

let prop_tv_symmetric =
  QCheck.Test.make ~name:"tv_distance symmetric and in [0,1]" ~count:200
    (QCheck.make QCheck.Gen.(pair pmf_gen pmf_gen))
    (fun ((o1, m1), (o2, m2)) ->
      let a = Pmf.normalize (Pmf.create ~offset:o1 m1) in
      let b = Pmf.normalize (Pmf.create ~offset:o2 m2) in
      let d = Pmf.tv_distance a b in
      Float.abs (d -. Pmf.tv_distance b a) < 1e-12 && d >= 0. && d <= 1. +. 1e-12)

let prop_summary_merge_equals_concat =
  QCheck.Test.make ~name:"Summary.merge = summary of concatenation" ~count:200
    QCheck.(pair (list (float_bound_exclusive 100.)) (list (float_bound_exclusive 100.)))
    (fun (xs, ys) ->
      let a = Summary.of_array (Array.of_list xs) in
      let b = Summary.of_array (Array.of_list ys) in
      let merged = Summary.merge a b in
      let direct = Summary.of_array (Array.of_list (xs @ ys)) in
      Summary.count merged = Summary.count direct
      && (Summary.count direct = 0
         || Float.abs (Summary.mean merged -. Summary.mean direct) < 1e-6))

let prop_binomial_cdf_monotone =
  QCheck.Test.make ~name:"binomial cdf monotone" ~count:100
    QCheck.(pair (int_range 1 50) (float_range 0.05 0.95))
    (fun (n, p) ->
      let ok = ref true in
      for k = 0 to n - 1 do
        if Binomial.cdf ~n ~p k > Binomial.cdf ~n ~p (k + 1) +. 1e-12 then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "log_gamma known values" `Quick test_log_gamma_known_values;
    Alcotest.test_case "log_factorial" `Quick test_log_factorial;
    Alcotest.test_case "log_choose" `Quick test_log_choose;
    Alcotest.test_case "gamma P+Q=1" `Quick test_gamma_p_q_complementarity;
    Alcotest.test_case "gamma P(1,x)" `Quick test_gamma_p_exponential_special_case;
    Alcotest.test_case "log_add / log_sum" `Quick test_log_add;
    Alcotest.test_case "pmf basics" `Quick test_pmf_basic;
    Alcotest.test_case "pmf normalize" `Quick test_pmf_normalize;
    Alcotest.test_case "pmf variance" `Quick test_pmf_variance;
    Alcotest.test_case "pmf tv distance" `Quick test_pmf_tv_distance;
    Alcotest.test_case "pmf condition" `Quick test_pmf_condition;
    Alcotest.test_case "pmf of_assoc" `Quick test_pmf_of_assoc_accumulates;
    Alcotest.test_case "pmf of_samples" `Quick test_pmf_of_samples;
    Alcotest.test_case "binomial sums to 1" `Quick test_binomial_pmf_sums_to_one;
    Alcotest.test_case "binomial moments" `Quick test_binomial_moments;
    Alcotest.test_case "binomial cdf consistency" `Quick test_binomial_cdf_consistency;
    Alcotest.test_case "binomial deep tail (sec 7.4 regime)" `Quick test_binomial_log_cdf_deep_tail;
    Alcotest.test_case "binomial degenerate p" `Quick test_binomial_degenerate;
    Alcotest.test_case "binomial sampling" `Quick test_binomial_sampling;
    Alcotest.test_case "summary vs direct" `Quick test_summary_against_direct;
    Alcotest.test_case "summary merge" `Quick test_summary_merge;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "chi-square accepts uniform" `Quick test_chi_square_uniform_accepts_uniform;
    Alcotest.test_case "chi-square rejects skew" `Quick test_chi_square_uniform_rejects_skew;
    Alcotest.test_case "chi-square pooling" `Quick test_chi_square_pooling;
    Alcotest.test_case "ks identical" `Quick test_ks_identical;
    Alcotest.test_case "ks disjoint" `Quick test_ks_disjoint;
    QCheck_alcotest.to_alcotest prop_normalize_total;
    QCheck_alcotest.to_alcotest prop_tv_symmetric;
    QCheck_alcotest.to_alcotest prop_summary_merge_equals_concat;
    QCheck_alcotest.to_alcotest prop_binomial_cdf_monotone;
  ]
