(* Streaming descriptive statistics (Welford's online algorithm) plus
   convenience reductions over arrays.  Used by the simulation monitors to
   report degree balance, decay rates, etc. *)

type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;   (* sum of squared deviations *)
  mutable min : float;
  mutable max : float;
}

let create () =
  { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_int t x = add t (float_of_int x)

let count t = t.count
let mean t = if t.count = 0 then Float.nan else t.mean

let variance t =
  if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)

(* Population variance (divide by n); matches moments of a full census such
   as "variance of node indegrees" in Property M2. *)
let variance_population t =
  if t.count = 0 then 0. else t.m2 /. float_of_int t.count

let std t = sqrt (variance t)
let std_population t = sqrt (variance_population t)
let min_value t = t.min
let max_value t = t.max

let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else begin
    let n = a.count + b.count in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.count /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.count *. float_of_int b.count /. float_of_int n)
    in
    { count = n; mean; m2; min = Float.min a.min b.min; max = Float.max a.max b.max }
  end

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let of_int_array xs =
  let t = create () in
  Array.iter (add_int t) xs;
  t

(* Exact percentile by sorting a copy; [q] in [0,1], linear interpolation. *)
let percentile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.percentile: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  if q <= 0. then sorted.(0)
  else if q >= 1. then sorted.(n - 1)
  else
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let frac = pos -. float_of_int lo in
    if lo + 1 >= n then sorted.(n - 1)
    else sorted.(lo) +. (frac *. (sorted.(lo + 1) -. sorted.(lo)))

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.3f std=%.3f min=%.1f max=%.1f"
    t.count (mean t) (std t) t.min t.max
