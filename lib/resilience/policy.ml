(* The resilience policy: everything a driver needs to self-heal.

   A single value threaded as [?resilience] through [Sf_core.Runner] and
   [Sf_net.Cluster] (and, as a window flag, [Sf_engine.Network]).  It
   bundles the estimator/controller/supervisor knobs with the injected
   section 6.3 solver — injected because the solver implementation lives
   in lib/analysis, *above* this library in the dependency order
   (sf_resil -> sf_core -> ... -> sf_analysis); drivers that can see
   [Sf_analysis.Thresholds.select_lossy] wire it in at the call site.

   Omitting [?resilience] entirely leaves every driver bit-for-bit
   identical to a build without this layer.  An *inert* policy (both
   [retune] and [recover] false) still runs the estimator — which
   consumes no randomness — so estimation can be observed without
   authorizing any corrective action; this is also what the identity
   tests pin. *)

type t = {
  solve : loss:float -> int * int;
      (* the section 6.3 rule against an estimated loss: loss -> (dL, s) *)
  retune : bool;             (* let the controller move (dL, s) *)
  recover : bool;            (* let the supervisor drive repairs *)
  estimator_window : int;    (* sends per estimation window *)
  smoothing : float;         (* estimator EWMA weight *)
  hysteresis : float;        (* controller dead band on the estimate *)
  cooldown : int;            (* controller ticks between retunes *)
  max_step : int;            (* controller slots moved per retune *)
  max_lower : int option;    (* dL ceiling; default s - 6 at the driver *)
  backoff_base : float;      (* supervisor backoff, in rounds *)
  backoff_factor : float;
  backoff_cap : float;
  backoff_jitter : float;
}

let make ?(retune = true) ?(recover = true) ?(estimator_window = 2000)
    ?(smoothing = 0.3) ?(hysteresis = 0.02) ?(cooldown = 10) ?(max_step = 4)
    ?max_lower ?(backoff_base = 1.0) ?(backoff_factor = 2.0)
    ?(backoff_cap = 32.0) ?(backoff_jitter = 0.5) ~solve () =
  {
    solve;
    retune;
    recover;
    estimator_window;
    smoothing;
    hysteresis;
    cooldown;
    max_step;
    max_lower;
    backoff_base;
    backoff_factor;
    backoff_cap;
    backoff_jitter;
  }

(* An inert policy: observe (estimate) but never act.  Drivers given this
   must replay byte-identically to drivers given no policy at all. *)
let observe_only ?estimator_window ?smoothing () =
  make ?estimator_window ?smoothing ~retune:false ~recover:false
    ~solve:(fun ~loss:_ -> (0, 6))
    ()

let estimator t = Estimator.create ~window:t.estimator_window ~smoothing:t.smoothing ()

let backoff t ~rng =
  Backoff.create ~base:t.backoff_base ~factor:t.backoff_factor ~cap:t.backoff_cap
    ~jitter:t.backoff_jitter ~rng ()

let supervisor t ~rng = Supervisor.create ~backoff:(backoff t ~rng) ()

(* Build the controller for a driver running at [initial] = (dL, s) with
   an allocated view capacity of [capacity] slots.  The retuning budget:
   dL ranges over [0, min max_lower (capacity - 6)], s over
   [initial s, capacity] — views are fixed arrays, so s can never exceed
   what was allocated, and shrinking s below its initial value is refused
   here (a per-node degree floor is the driver's concern). *)
let controller t ~initial ~capacity =
  let _, s0 = initial in
  let max_lower =
    match t.max_lower with Some m -> min m (capacity - 6) | None -> capacity - 6
  in
  let limits =
    {
      Controller.min_lower = 0;
      max_lower;
      min_view = s0;
      max_view = capacity;
    }
  in
  Controller.create ~hysteresis:t.hysteresis ~cooldown:t.cooldown
    ~max_step:t.max_step ~solve:t.solve ~limits ~initial ()
