(* Goodness-of-fit tests used by the property monitors: chi-square against a
   reference distribution (uniformity of view entries, Property M3) and a
   two-sample Kolmogorov-Smirnov test for comparing empirical degree
   distributions against the degree-MC prediction. *)

type chi_square_result = {
  statistic : float;
  degrees_of_freedom : int;
  p_value : float;
}

(* Chi-square test of observed integer counts against expected counts.
   Cells with expected count below [min_expected] are pooled into their
   neighbour to keep the asymptotic approximation honest. *)
let chi_square ?(min_expected = 5.) ~observed ~expected () =
  if Array.length observed <> Array.length expected then
    invalid_arg "Hypothesis.chi_square: length mismatch";
  if Array.length observed = 0 then
    invalid_arg "Hypothesis.chi_square: empty";
  (* Pool consecutive cells until each pooled cell has enough expectation. *)
  let pooled = ref [] in
  let acc_o = ref 0. and acc_e = ref 0. in
  Array.iteri
    (fun i _ ->
      acc_o := !acc_o +. observed.(i);
      acc_e := !acc_e +. expected.(i);
      if !acc_e >= min_expected then begin
        pooled := (!acc_o, !acc_e) :: !pooled;
        acc_o := 0.;
        acc_e := 0.
      end)
    observed;
  (* Fold any residual tail into the last pooled cell. *)
  (match !pooled with
  | (o, e) :: rest when !acc_e > 0. -> pooled := (o +. !acc_o, e +. !acc_e) :: rest
  | [] -> pooled := [ (!acc_o, !acc_e) ]
  | _ -> ());
  let cells = Array.of_list (List.rev !pooled) in
  let statistic =
    Array.fold_left
      (fun acc (o, e) -> if e > 0. then acc +. (((o -. e) ** 2.) /. e) else acc)
      0. cells
  in
  let degrees_of_freedom = max 1 (Array.length cells - 1) in
  let p_value = Special.gamma_q (float_of_int degrees_of_freedom /. 2.) (statistic /. 2.) in
  { statistic; degrees_of_freedom; p_value }

(* Chi-square test that integer counts are uniform over their cells. *)
let chi_square_uniform counts =
  let total = Array.fold_left ( +. ) 0. counts in
  let k = Array.length counts in
  if k = 0 || total <= 0. then invalid_arg "Hypothesis.chi_square_uniform";
  let expected = Array.make k (total /. float_of_int k) in
  chi_square ~observed:counts ~expected ()

(* Two-sample KS statistic over integer samples: max CDF gap. *)
let ks_statistic a b =
  if Array.length a = 0 || Array.length b = 0 then
    invalid_arg "Hypothesis.ks_statistic: empty sample";
  let pa = Pmf.of_samples a and pb = Pmf.of_samples b in
  let lo = min (Pmf.offset pa) (Pmf.offset pb) in
  let hi = max (Pmf.max_support pa) (Pmf.max_support pb) in
  let gap = ref 0. and ca = ref 0. and cb = ref 0. in
  for k = lo to hi do
    ca := !ca +. Pmf.prob pa k;
    cb := !cb +. Pmf.prob pb k;
    gap := Float.max !gap (Float.abs (!ca -. !cb))
  done;
  !gap

(* Asymptotic two-sample KS p-value (Kolmogorov distribution tail). *)
let ks_p_value a b =
  let d = ks_statistic a b in
  let na = float_of_int (Array.length a) and nb = float_of_int (Array.length b) in
  let ne = na *. nb /. (na +. nb) in
  let lambda = (sqrt ne +. 0.12 +. (0.11 /. sqrt ne)) *. d in
  (* The Kolmogorov series diverges numerically for tiny lambda, where the
     true tail probability is 1 anyway. *)
  if lambda < 0.2 then 1.
  else
  let acc = ref 0. in
  for j = 1 to 100 do
    let fj = float_of_int j in
    let term = ((-1.) ** (fj -. 1.)) *. exp (-2. *. fj *. fj *. lambda *. lambda) in
    acc := !acc +. term
  done;
  Float.max 0. (Float.min 1. (2. *. !acc))
