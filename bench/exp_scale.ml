(* SCALE: the million-node ladder over the sharded flat-state runner
   (ROADMAP item 1), plus SSTORM, its chaos gate.

   The baseline ladder — n = 10^4, 10^5, 10^6 — runs bulk-synchronous
   rounds on Runner.Sharded and reports actions/second plus the process's
   peak RSS.  The 10k leg additionally:

   - replays itself under the strict invariant audit (edge ledger every
     round, full structural scan periodically) on a fresh world, and
   - re-runs on 2 domains and asserts bit-for-bit equality with the
     1-domain world (Runner.Sharded.equal) — the determinism contract of
     the sharded engine, checked in anger.

   The full ladder then adds chaos legs at 10^5 and 10^6: bursty
   Gilbert-Elliott loss (stationary mean 0.2, mean burst 8) with 1%
   join/leave churn per round, once with the adaptive resilience stack on
   and once off — the cost of surviving the regime vs merely running it.

   The whole ladder folds into BENCH_scale.json (one object per leg).
   [run ~smoke:true] is the CI gate: the 10k leg only, with both checks,
   well under a minute.  The full ladder is the artifact behind the
   committed BENCH_scale.json.

   [sstorm] is the storm-scale CI gate (budget: well under a minute),
   written to BENCH_sstorm.json: an audited n = 10^4 run under a mixed
   GE + partition + crash scenario with churn and resilience on, the
   domain-count oracle at k in {1, 2, 4}, and the injector verdict —
   every declared fault class must leave evidence in the counters.  Exit
   1 on a failed verdict, matching `sfg soak`. *)

module Sharded = Sf_core.Runner.Sharded
module Protocol = Sf_core.Protocol
module Census = Sf_core.Census
module Invariant = Sf_check.Invariant
module Json = Sf_obs.Json

let seed = 42
let loss = 0.05
let shards = 16

(* Small view: at n = 10^6, each of ids/serials/anchors/born is
   n * s ints — s = 16 keeps the store at ~512 MB of unboxed arrays. *)
let config = Protocol.make_config ~view_size:16 ~lower_threshold:4

(* The production solver wiring: section 6.3 re-solved for the estimated
   loss, clamped below select_lossy's 0.5 domain bound. *)
let chaos_policy () =
  let solve ~loss =
    let t =
      Sf_analysis.Thresholds.select_lossy ~d_hat:8 ~delta:0.01
        ~loss:(Float.min loss 0.45)
    in
    (t.Sf_analysis.Thresholds.lower_threshold, t.Sf_analysis.Thresholds.view_size)
  in
  Sf_resil.Policy.make ~solve ()

let scenario_exn s =
  match Sf_faults.Scenario.of_string s with
  | Ok sc -> sc
  | Error e -> invalid_arg ("SCALE: scenario: " ^ e)

(* Bursty loss at stationary mean 0.2 for the chaos legs; scaled to n so
   every leg's churn headroom stays proportional. *)
let chaos_scenario () = scenario_exn "ge:0.2:8"
let chaos_churn n = { Sharded.churn_rate = 0.01; headroom = max 1024 (n / 50) }

type leg = {
  label : string;
  n : int;
  rounds : int;
  domains : int;
  resilience : bool;
  churned : bool;
  seconds : float;
  actions : int;
  peak_rss_kb : int option;
  mean_degree : float;
  alpha : float;
  audited : bool;
  audit_violations : int;
  identity_checked : bool;
  identity_ok : bool;
}

let actions_per_sec leg =
  if leg.seconds > 0. then float_of_int leg.actions /. leg.seconds else 0.

(* One timed leg: fresh world, [rounds] rounds, no audit in the timed
   region (the audit's per-round scans would dominate at 10^6). *)
let timed_leg ?(label = "baseline") ?scenario ?churn ?(resilience = false) ~n
    ~rounds ~domains ~audit () =
  let make () =
    Sharded.create ~shards ~loss_rate:loss ?scenario ?churn
      ?resilience:(if resilience then Some (chaos_policy ()) else None)
      ~seed ~n ~config ()
  in
  let audited, audit_violations, identity_checked, identity_ok =
    if not audit then (false, 0, false, false)
    else begin
      (* Strict audit on its own world: any violation raises. *)
      let w = make () in
      let stats = Invariant.audited_sharded_run ~scan_every:10 w ~rounds in
      (* Domain-count invariance: 1 domain vs 2 domains, same seed. *)
      let a = make () and b = make () in
      Sharded.run_rounds a ~domains:1 rounds;
      Sharded.run_rounds b ~domains:2 rounds;
      (true, stats.Invariant.violation_count, true, Sharded.equal a b)
    end
  in
  let w = make () in
  let elapsed = Sf_obs.Clock.stopwatch ~clock:Sf_obs.Clock.wall in
  Sharded.run_rounds w ~domains rounds;
  let seconds = elapsed () in
  let counters = Sharded.world_counters w in
  let census = Census.of_flat (Sharded.store w) in
  let leg =
    {
      label;
      n;
      rounds;
      domains;
      resilience;
      churned = churn <> None;
      seconds;
      actions = counters.Sf_core.Runner.actions;
      peak_rss_kb = Sf_obs.Clock.peak_rss_kb ();
      mean_degree =
        float_of_int (Sharded.total_edges w)
        /. float_of_int (Sharded.live_count w);
      alpha = census.Census.alpha;
      audited;
      audit_violations;
      identity_checked;
      identity_ok;
    }
  in
  Output.row
    "  %-14s n=%7d  rounds=%2d  %6.2fs  %10.0f actions/s  d=%5.2f  alpha=%.3f%s@."
    label n rounds seconds (actions_per_sec leg) leg.mean_degree leg.alpha
    (match leg.peak_rss_kb with
    | Some kb -> Fmt.str "  rss=%dMB" (kb / 1024)
    | None -> "");
  if audit then begin
    Output.check (Fmt.str "strict audit clean over %d rounds" rounds)
      (audit_violations = 0);
    Output.check "2-domain run bit-identical to 1-domain run" identity_ok
  end;
  leg

let json_of_leg leg =
  Json.Obj
    [
      ("label", Json.String leg.label);
      ("n", Json.Int leg.n);
      ("rounds", Json.Int leg.rounds);
      ("domains", Json.Int leg.domains);
      ("shards", Json.Int shards);
      ("loss", Json.Float loss);
      ("resilience", Json.Bool leg.resilience);
      ("churn", Json.Bool leg.churned);
      ("seconds", Json.Float leg.seconds);
      ("actions", Json.Int leg.actions);
      ("actions_per_sec", Json.Float (actions_per_sec leg));
      ( "peak_rss_kb",
        match leg.peak_rss_kb with Some kb -> Json.Int kb | None -> Json.Null );
      ("mean_degree", Json.Float leg.mean_degree);
      ("alpha", Json.Float leg.alpha);
      ("audited", Json.Bool leg.audited);
      ("audit_violations", Json.Int leg.audit_violations);
      ("identity_checked", Json.Bool leg.identity_checked);
      ("identity_ok", Json.Bool leg.identity_ok);
    ]

let run ~smoke () =
  Output.section
    (if smoke then "SCALE10" else "SCALE")
    "Million-node ladder on the sharded flat-state runner";
  Output.row "  s=%d dL=%d shards=%d loss=%.2f seed=%d@."
    config.Protocol.view_size config.Protocol.lower_threshold shards loss seed;
  let domains = max 1 (min shards (Domain.recommended_domain_count ())) in
  (* Ascending n, sequenced explicitly: peak RSS is the process's monotone
     high-water mark, so each leg's reading must not inherit a larger
     earlier world (and list literals evaluate right to left). *)
  let legs =
    if smoke then [ timed_leg ~n:10_000 ~rounds:30 ~domains ~audit:true () ]
    else begin
      let small = timed_leg ~n:10_000 ~rounds:30 ~domains ~audit:true () in
      let mid = timed_leg ~n:100_000 ~rounds:10 ~domains ~audit:false () in
      (* Chaos legs at each n before its bigger baseline: GE 0.2 loss,
         1% churn per round, resilience off then on. *)
      let chaos ~n ~rounds ~resilience =
        timed_leg
          ~label:(if resilience then "chaos+resil" else "chaos")
          ~scenario:(chaos_scenario ()) ~churn:(chaos_churn n) ~resilience ~n
          ~rounds ~domains ~audit:false ()
      in
      let mid_chaos = chaos ~n:100_000 ~rounds:10 ~resilience:false in
      let mid_resil = chaos ~n:100_000 ~rounds:10 ~resilience:true in
      let big = timed_leg ~n:1_000_000 ~rounds:5 ~domains ~audit:false () in
      let big_chaos = chaos ~n:1_000_000 ~rounds:5 ~resilience:false in
      let big_resil = chaos ~n:1_000_000 ~rounds:5 ~resilience:true in
      [ small; mid; mid_chaos; mid_resil; big; big_chaos; big_resil ]
    end
  in
  let failed =
    List.exists
      (fun l -> l.audit_violations > 0 || (l.identity_checked && not l.identity_ok))
      legs
  in
  if failed then failwith "SCALE: audit or determinism check failed";
  Json.Obj
    [
      ("config",
       Json.Obj
         [
           ("view_size", Json.Int config.Protocol.view_size);
           ("lower_threshold", Json.Int config.Protocol.lower_threshold);
           ("shards", Json.Int shards);
           ("loss", Json.Float loss);
           ("seed", Json.Int seed);
           ("domains", Json.Int domains);
         ]);
      ("legs", Json.List (List.map json_of_leg legs));
    ]

(* --- SSTORM: the chaos gate at n = 10^4 --- *)

let sstorm () =
  Output.section "SSTORM"
    "Chaos gate: mixed faults + churn + resilience on the sharded runner";
  let n = 10_000 and rounds = 30 in
  let scenario = scenario_exn "ge:0.2:8;partition@5-12:2;crash@15-20:0-999" in
  let churn = { Sharded.churn_rate = 0.01; headroom = 1024 } in
  let make () =
    Sharded.create ~shards ~seed ~n ~config ~scenario ~churn
      ~resilience:(chaos_policy ()) ~probe_every:8 ()
  in
  Output.row "  n=%d rounds=%d s=%d dL=%d shards=%d seed=%d@." n rounds
    config.Protocol.view_size config.Protocol.lower_threshold shards seed;
  Output.row "  scenario=%s churn=%.2f@."
    (Sf_faults.Scenario.to_string scenario)
    churn.Sharded.churn_rate;
  (* Strict audit: extended ledger every round, structural scans. *)
  let audit_world = make () in
  let stats =
    Invariant.audited_sharded_run ~mode:Invariant.Strict ~scan_every:10
      audit_world ~rounds
  in
  (* Domain-count oracle at k in {1, 2, 4}. *)
  let domain_runs =
    List.map
      (fun k ->
        let w = make () in
        let elapsed = Sf_obs.Clock.stopwatch ~clock:Sf_obs.Clock.wall in
        Sharded.run_rounds w ~domains:k rounds;
        (k, w, elapsed ()))
      [ 1; 2; 4 ]
  in
  let reference =
    match domain_runs with (_, w, _) :: _ -> w | [] -> assert false
  in
  let identity_ok =
    List.for_all (fun (_, w, _) -> Sharded.equal reference w) domain_runs
  in
  (* Injector verdict: every declared fault class left evidence. *)
  let fs =
    match Sharded.fault_statistics reference with
    | Some fs -> fs
    | None -> invalid_arg "SSTORM: scenario declared but no injector statistics"
  in
  let cs = Sharded.churn_statistics reference in
  let rs =
    match Sharded.resilience_statistics reference with
    | Some rs -> rs
    | None -> invalid_arg "SSTORM: resilience declared but no statistics"
  in
  let verdicts =
    [
      ("strict audit clean", stats.Invariant.violation_count = 0);
      ("domain counts 1/2/4 bit-identical", identity_ok);
      ("bursty loss engaged", fs.Sf_faults.Injector.burst_drops > 0);
      ("partition engaged", fs.Sf_faults.Injector.partition_drops > 0);
      ("crash wave engaged", fs.Sf_faults.Injector.crash_drops > 0);
      ("fault windows transitioned", fs.Sf_faults.Injector.fault_transitions > 0);
      ("churn turned nodes over", cs.Sharded.joins > 0);
      ("estimator confident", rs.Sf_core.Runner.estimator_confident);
    ]
  in
  List.iter (fun (what, ok) -> Output.check what ok) verdicts;
  let dl, s = Sharded.live_thresholds reference in
  Output.row
    "  faults: %d judged, %d chance (%d bursty), %d partition, %d crash; churn \
     %d joins/%d leaves; loss estimate %.3f; thresholds dL=%d s=%d@."
    fs.Sf_faults.Injector.judged fs.Sf_faults.Injector.chance_drops
    fs.Sf_faults.Injector.burst_drops fs.Sf_faults.Injector.partition_drops
    fs.Sf_faults.Injector.crash_drops cs.Sharded.joins cs.Sharded.leaves
    rs.Sf_core.Runner.loss_estimate dl s;
  let failed = List.filter (fun (_, ok) -> not ok) verdicts in
  if failed <> [] then begin
    List.iter
      (fun (what, _) -> Fmt.epr "SSTORM: failed verdict: %s@." what)
      failed;
    (* Exit 1 on a failed verdict — same convention as `sfg soak`. *)
    exit 1
  end;
  Json.Obj
    [
      ("n", Json.Int n);
      ("rounds", Json.Int rounds);
      ("shards", Json.Int shards);
      ("scenario", Json.String (Sf_faults.Scenario.to_string scenario));
      ("churn_rate", Json.Float churn.Sharded.churn_rate);
      ("audit_violations", Json.Int stats.Invariant.violation_count);
      ("rounds_audited", Json.Int stats.Invariant.actions_checked);
      ("identity_ok", Json.Bool identity_ok);
      ( "domain_runs",
        Json.List
          (List.map
             (fun (k, _, seconds) ->
               Json.Obj [ ("domains", Json.Int k); ("seconds", Json.Float seconds) ])
             domain_runs) );
      ( "faults",
        Json.Obj
          [
            ("judged", Json.Int fs.Sf_faults.Injector.judged);
            ("chance_drops", Json.Int fs.Sf_faults.Injector.chance_drops);
            ("burst_drops", Json.Int fs.Sf_faults.Injector.burst_drops);
            ("partition_drops", Json.Int fs.Sf_faults.Injector.partition_drops);
            ("crash_drops", Json.Int fs.Sf_faults.Injector.crash_drops);
            ( "fault_transitions",
              Json.Int fs.Sf_faults.Injector.fault_transitions );
          ] );
      ( "churn",
        Json.Obj
          [
            ("joins", Json.Int cs.Sharded.joins);
            ("leaves", Json.Int cs.Sharded.leaves);
            ("join_skips", Json.Int cs.Sharded.join_skips);
            ("deliveries_to_dead", Json.Int cs.Sharded.deliveries_to_dead);
            ("live", Json.Int (Sharded.live_count reference));
          ] );
      ( "resilience",
        Json.Obj
          [
            ("loss_estimate", Json.Float rs.Sf_core.Runner.loss_estimate);
            ( "estimator_confident",
              Json.Bool rs.Sf_core.Runner.estimator_confident );
            ("retunes", Json.Int rs.Sf_core.Runner.retunes);
            ("repair_attempts", Json.Int rs.Sf_core.Runner.repair_attempts);
            ("recoveries", Json.Int rs.Sf_core.Runner.recoveries);
            ("lower_threshold", Json.Int dl);
            ("view_size", Json.Int s);
          ] );
      ( "verdicts",
        Json.Obj (List.map (fun (what, ok) -> (what, Json.Bool ok)) verdicts) );
    ]
