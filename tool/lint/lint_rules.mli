(** The sf_lint rule engine, pure so tests can drive it on in-memory
    fixture sources.  See the [.ml] for the rationale of each rule. *)

type finding = {
  rule : string;
  path : string;
  line : int;  (** 1-based; 0 for file-level rules such as missing-mli *)
  message : string;
}

val pp_finding : finding Fmt.t

val strip_literals : string -> string
(** Replace comment and string-literal contents with spaces, preserving
    newlines (so positions map to the original line numbers). *)

val rule_docs : (string * string) list
(** [(id, one-line description)] for every rule, missing-mli included. *)

val check_file : path:string -> string -> finding list
(** Token rules applicable to [path] over one source. *)

val check_missing_mli : string list -> finding list
(** File-set rule over repo-relative paths: every [lib/**/*.ml] needs a
    sibling [.mli]. *)

val check_files : (string * string) list -> finding list
(** [check_file] on each [(path, source)] plus [check_missing_mli] over the
    path set. *)

type allow = { allow_path : string; allow_rule : string }
(** One allowlist entry; [allow_rule] may be ["*"]. *)

val parse_allowlist : string -> (allow list, string) result
(** Parse [path rule] lines; ['#'] starts a comment; blank lines ignored. *)

val apply_allowlist : allow list -> finding list -> finding list * allow list
(** Partition findings: those not suppressed by the allowlist, and the
    allowlist entries that matched nothing (stale — the driver treats them
    as errors so the allowlist cannot rot). *)
