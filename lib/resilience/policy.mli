(** The resilience policy threaded as [?resilience] through the drivers.

    Bundles the {!Estimator}/{!Controller}/{!Supervisor} configuration
    with the injected section 6.3 solver (normally
    [Sf_analysis.Thresholds.select_lossy], wired at the call site — the
    solver lives above this library in the dependency order).  Omitting
    [?resilience] keeps every driver bit-for-bit identical to before the
    layer existed; {!observe_only} estimates without acting and is also
    replay-identical. *)

type t = {
  solve : loss:float -> int * int;
  retune : bool;
  recover : bool;
  estimator_window : int;
  smoothing : float;
  hysteresis : float;
  cooldown : int;
  max_step : int;
  max_lower : int option;
  backoff_base : float;
  backoff_factor : float;
  backoff_cap : float;
  backoff_jitter : float;
}

val make :
  ?retune:bool ->           (* adaptive (dL, s) retuning (default true) *)
  ?recover:bool ->          (* supervised connectivity repair (default true) *)
  ?estimator_window:int ->  (* sends per estimation window (default 2000) *)
  ?smoothing:float ->       (* estimator EWMA weight (default 0.3) *)
  ?hysteresis:float ->      (* controller dead band (default 0.02) *)
  ?cooldown:int ->          (* controller ticks between retunes (default 10) *)
  ?max_step:int ->          (* slots moved per retune, even (default 4) *)
  ?max_lower:int ->         (* dL ceiling (default capacity - 6) *)
  ?backoff_base:float ->    (* first retry delay in rounds (default 1.0) *)
  ?backoff_factor:float ->  (* backoff growth (default 2.0) *)
  ?backoff_cap:float ->     (* backoff ceiling in rounds (default 32.0) *)
  ?backoff_jitter:float ->  (* jittered delay fraction (default 0.5) *)
  solve:(loss:float -> int * int) ->
  unit ->
  t

val observe_only : ?estimator_window:int -> ?smoothing:float -> unit -> t
(** Estimate the loss rate but never retune or repair.  Drivers given
    this policy replay byte-identically to drivers given none (the
    estimator consumes no randomness) — the property the identity tests
    assert. *)

val estimator : t -> Estimator.t
(** A fresh estimator per this policy's knobs. *)

val backoff : t -> rng:Sf_prng.Rng.t -> Backoff.t

val supervisor : t -> rng:Sf_prng.Rng.t -> Supervisor.t
(** A fresh supervisor whose backoff jitter draws from [rng] (a dedicated
    resilience stream — drivers split it last so pre-existing streams are
    untouched). *)

val controller : t -> initial:(int * int) -> capacity:int -> Controller.t
(** A fresh controller for a driver running at [initial] = (dL, s) with
    [capacity] allocated view slots.  Budget: dL in
    [0, min max_lower (capacity - 6)], s in [initial s, capacity] (views
    are fixed arrays — s can never exceed the allocation). *)
