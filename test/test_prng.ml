(* Tests for the deterministic PRNG substrate. *)

module Rng = Sf_prng.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if not (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_split_independence () =
  let parent = Rng.create 7 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  Alcotest.(check bool) "children differ"
    true
    (not (Int64.equal (Rng.next_int64 child1) (Rng.next_int64 child2)))

let test_copy_preserves_state () =
  let a = Rng.create 9 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.next_int64 a) (Rng.next_int64 b)

let test_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_float_mean () =
  let rng = Rng.create 4 in
  let sum = ref 0. in
  let n = 100_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds_rejected () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniformity () =
  let rng = Rng.create 6 in
  let counts = Array.make 10 0. in
  for _ = 1 to 50_000 do
    let k = Rng.int rng 10 in
    counts.(k) <- counts.(k) +. 1.
  done;
  let r = Sf_stats.Hypothesis.chi_square_uniform counts in
  Alcotest.(check bool) "uniform by chi-square" true
    (r.Sf_stats.Hypothesis.p_value > 0.001)

let test_int_range () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Rng.int_range rng (-5) 5 in
    Alcotest.(check bool) "in range" true (x >= -5 && x <= 5)
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 10 in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)

let test_bernoulli_rate () =
  let rng = Rng.create 11 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.01)

let test_distinct_pair () =
  let rng = Rng.create 12 in
  for _ = 1 to 10_000 do
    let i, j = Rng.distinct_pair rng 6 in
    Alcotest.(check bool) "distinct and in range" true
      (i <> j && i >= 0 && i < 6 && j >= 0 && j < 6)
  done

let test_distinct_pair_covers_all_ordered_pairs () =
  let rng = Rng.create 13 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 5_000 do
    Hashtbl.replace seen (Rng.distinct_pair rng 3) ()
  done;
  Alcotest.(check int) "all 6 ordered pairs of 3 occur" 6 (Hashtbl.length seen)

let test_shuffle_is_permutation () =
  let rng = Rng.create 14 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 (fun i -> i)) sorted

let test_sample_indices_distinct () =
  let rng = Rng.create 15 in
  for _ = 1 to 500 do
    let picks = Rng.sample_indices rng ~n:20 ~k:7 in
    let set = List.sort_uniq compare (Array.to_list picks) in
    Alcotest.(check int) "7 distinct" 7 (List.length set);
    List.iter
      (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 20))
      set
  done

let test_exponential_mean () =
  let rng = Rng.create 16 in
  let sum = ref 0. in
  let n = 50_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 2.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (mean -. 0.5) < 0.02)

let test_geometric_mean () =
  let rng = Rng.create 17 in
  let sum = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric rng 0.25
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* mean of failures-before-success = (1-p)/p = 3 *)
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.) < 0.1)

let test_categorical_weights () =
  let rng = Rng.create 18 in
  let counts = Array.make 3 0 in
  let n = 60_000 in
  for _ = 1 to n do
    let k = Rng.categorical rng [| 1.; 2.; 3. |] in
    counts.(k) <- counts.(k) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "weight 1/6" true (Float.abs (frac 0 -. (1. /. 6.)) < 0.01);
  Alcotest.(check bool) "weight 2/6" true (Float.abs (frac 1 -. (2. /. 6.)) < 0.01);
  Alcotest.(check bool) "weight 3/6" true (Float.abs (frac 2 -. (3. /. 6.)) < 0.01)

let test_choose_singleton () =
  let rng = Rng.create 19 in
  Alcotest.(check int) "only element" 5 (Rng.choose rng [| 5 |])

(* Property tests *)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let prop_distinct_pair =
  QCheck.Test.make ~name:"distinct_pair yields distinct indices" ~count:500
    QCheck.(pair small_int (int_range 2 100))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let i, j = Rng.distinct_pair rng n in
      i <> j && i < n && j < n)

let prop_sample_indices =
  QCheck.Test.make ~name:"sample_indices are distinct and bounded" ~count:200
    QCheck.(pair small_int (int_range 1 50))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let k = 1 + (seed mod n) in
      let picks = Rng.sample_indices rng ~n ~k in
      Array.length picks = k
      && List.length (List.sort_uniq compare (Array.to_list picks)) = k
      && Array.for_all (fun x -> x >= 0 && x < n) picks)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy preserves state" `Quick test_copy_preserves_state;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "int bound validation" `Quick test_int_bounds_rejected;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "int_range bounds" `Quick test_int_range;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "distinct_pair validity" `Quick test_distinct_pair;
    Alcotest.test_case "distinct_pair coverage" `Quick test_distinct_pair_covers_all_ordered_pairs;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sample_indices distinct" `Quick test_sample_indices_distinct;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "categorical weights" `Quick test_categorical_weights;
    Alcotest.test_case "choose singleton" `Quick test_choose_singleton;
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_distinct_pair;
    QCheck_alcotest.to_alcotest prop_sample_indices;
  ]
