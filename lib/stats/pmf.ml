(* Probability mass functions over a contiguous integer support
   [offset, offset + length - 1].  The degree analysis manipulates these
   constantly: normalization, moments, distances, and restriction. *)

type t = {
  offset : int;          (* smallest support point *)
  mass : float array;    (* mass.(i) is the probability of (offset + i) *)
}

let create ~offset mass =
  if Array.exists (fun p -> p < 0. || Float.is_nan p) mass then
    invalid_arg "Pmf.create: negative or NaN mass";
  { offset; mass = Array.copy mass }

let offset t = t.offset
let length t = Array.length t.mass
let max_support t = t.offset + Array.length t.mass - 1

let prob t k =
  let i = k - t.offset in
  if i < 0 || i >= Array.length t.mass then 0. else t.mass.(i)

let total t = Array.fold_left ( +. ) 0. t.mass

let normalize t =
  let z = total t in
  if z <= 0. then invalid_arg "Pmf.normalize: zero total mass";
  { t with mass = Array.map (fun p -> p /. z) t.mass }

let iter f t = Array.iteri (fun i p -> f (t.offset + i) p) t.mass

let fold f init t =
  let acc = ref init in
  iter (fun k p -> acc := f !acc k p) t;
  !acc

let mean t = fold (fun acc k p -> acc +. (float_of_int k *. p)) 0. t

let variance t =
  let m = mean t in
  fold (fun acc k p -> acc +. (p *. ((float_of_int k -. m) ** 2.))) 0. t

let std t = sqrt (variance t)

let mode t =
  let best = ref t.offset and best_p = ref neg_infinity in
  iter (fun k p -> if p > !best_p then begin best := k; best_p := p end) t;
  !best

let cdf t k = fold (fun acc j p -> if j <= k then acc +. p else acc) 0. t

(* P(X >= k). *)
let ccdf t k = fold (fun acc j p -> if j >= k then acc +. p else acc) 0. t

(* Total variation distance between two pmfs (defined on any supports). *)
let tv_distance a b =
  let lo = min a.offset b.offset in
  let hi = max (max_support a) (max_support b) in
  let acc = ref 0. in
  for k = lo to hi do
    acc := !acc +. Float.abs (prob a k -. prob b k)
  done;
  0.5 *. !acc

(* Restrict to support points satisfying [pred], renormalizing. *)
let condition t pred =
  let mass = Array.mapi (fun i p -> if pred (t.offset + i) then p else 0.) t.mass in
  normalize { t with mass }

let of_assoc pairs =
  match pairs with
  | [] -> invalid_arg "Pmf.of_assoc: empty"
  | (k0, _) :: _ ->
    let lo = List.fold_left (fun acc (k, _) -> min acc k) k0 pairs in
    let hi = List.fold_left (fun acc (k, _) -> max acc k) k0 pairs in
    let mass = Array.make (hi - lo + 1) 0. in
    List.iter (fun (k, p) -> mass.(k - lo) <- mass.(k - lo) +. p) pairs;
    create ~offset:lo mass

(* Empirical pmf of a sample of integers. *)
let of_samples samples =
  if Array.length samples = 0 then invalid_arg "Pmf.of_samples: empty";
  let lo = Array.fold_left min samples.(0) samples in
  let hi = Array.fold_left max samples.(0) samples in
  let mass = Array.make (hi - lo + 1) 0. in
  let w = 1. /. float_of_int (Array.length samples) in
  Array.iter (fun k -> mass.(k - lo) <- mass.(k - lo) +. w) samples;
  { offset = lo; mass }

let to_alist t =
  List.rev (fold (fun acc k p -> (k, p) :: acc) [] t)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  iter (fun k p -> if p > 1e-12 then Fmt.pf ppf "%4d  %.6f@," k p) t;
  Fmt.pf ppf "@]"
