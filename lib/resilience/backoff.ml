(* Capped exponential backoff with deterministic jitter.

   All delays are measured in *rounds* — the paper's time unit — never in
   wall-clock seconds: recovery scheduling must replay byte-identically
   from a seed, so the jitter draw comes from an injected PRNG stream and
   the caller converts rounds to its own clock (the sequential runner's
   action clock, the cluster's firing period).  The sf_lint
   [no-raw-backoff] rule pins any wall-clock sleeping to this module, and
   this module never sleeps: it only computes when the next attempt is
   allowed. *)

type t = {
  base : float;    (* delay of the first retry, in rounds *)
  factor : float;  (* multiplier per consecutive failure *)
  cap : float;     (* upper bound on the un-jittered delay *)
  jitter : float;  (* fraction of the delay drawn uniformly at random *)
  rng : Sf_prng.Rng.t;
  mutable attempts : int;
}

let create ?(base = 1.0) ?(factor = 2.0) ?(cap = 32.0) ?(jitter = 0.5) ~rng () =
  if base <= 0. then invalid_arg "Backoff.create: base must be positive";
  if factor < 1. then invalid_arg "Backoff.create: factor must be >= 1";
  if cap < base then invalid_arg "Backoff.create: cap must be >= base";
  if jitter < 0. || jitter > 1. then
    invalid_arg "Backoff.create: jitter must lie in [0, 1]";
  { base; factor; cap; jitter; rng; attempts = 0 }

let attempts t = t.attempts

(* Delay before the next attempt: base * factor^attempts, capped, with the
   last [jitter] fraction replaced by a uniform draw — full delay spread
   [d * (1 - jitter), d], so concurrent recoverers desynchronize while the
   expected wait still grows geometrically. *)
let next t =
  let raw = t.base *. (t.factor ** float_of_int t.attempts) in
  let capped = Float.min raw t.cap in
  t.attempts <- t.attempts + 1;
  let spread = capped *. t.jitter in
  capped -. (spread *. Sf_prng.Rng.float t.rng)

let reset t = t.attempts <- 0
