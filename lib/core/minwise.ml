(* Min-wise independent sampling layer, after Brahms (Bortnikov, Gurevich,
   Keidar, Kliot, Shraer — cited as [7] in the paper).

   Section 3.1 contrasts S&F's *evolving* uniform views with Brahms-style
   *persistent* samples: each node feeds the stream of ids it observes
   through k independent min-wise samplers; sampler i keeps the id
   minimizing a keyed hash h_i, which converges to a uniform choice among
   all ids ever observed — even if the observation stream is biased.  The
   price is exactly what the paper points out: a converged sampler's output
   never changes, so the samples provide no temporal independence.  The B3
   bench measures both sides of that trade. *)

type sampler = {
  key : int64;
  mutable best_hash : int64;  (* unsigned comparison; max_int64 = empty *)
  mutable best_id : int;
}

type t = { samplers : sampler array; mutable observed : int }

(* A keyed 64-bit mix (SplitMix64 finalizer over key xor id): behaves as a
   family of min-wise independent hash functions for our purposes. *)
let keyed_hash key id =
  let z = Int64.logxor key (Int64.mul (Int64.of_int (id + 1)) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create rng ~k =
  if k <= 0 then invalid_arg "Minwise.create: k must be positive";
  {
    samplers =
      Array.init k (fun _ ->
          { key = Sf_prng.Rng.next_int64 rng; best_hash = Int64.minus_one; best_id = -1 });
    observed = 0;
  }

let observe t id =
  t.observed <- t.observed + 1;
  Array.iter
    (fun s ->
      let h = keyed_hash s.key id in
      if s.best_id = -1 || Int64.unsigned_compare h s.best_hash < 0 then begin
        s.best_hash <- h;
        s.best_id <- id
      end)
    t.samplers

let observe_all t ids = List.iter (observe t) ids

let observed_count t = t.observed

(* Current outputs of the non-empty samplers. *)
let samples t =
  Array.to_list t.samplers
  |> List.filter_map (fun s -> if s.best_id = -1 then None else Some s.best_id)

(* Invalidate samples whose id is reported dead (Brahms re-seeds such
   samplers; here they simply restart from the future stream). *)
let invalidate t ~is_dead =
  Array.iter
    (fun s ->
      if s.best_id <> -1 && is_dead s.best_id then begin
        s.best_id <- -1;
        s.best_hash <- Int64.minus_one
      end)
    t.samplers

(* A fleet of per-node sampler layers fed from each node's evolving view —
   the standard way to drive the layer from a membership protocol. *)
type fleet = { layers : (int, t) Hashtbl.t; rng : Sf_prng.Rng.t; k : int }

let create_fleet rng ~k = { layers = Hashtbl.create 256; rng; k }

let layer fleet ~node_id =
  match Hashtbl.find_opt fleet.layers node_id with
  | Some l -> l
  | None ->
    let l = create fleet.rng ~k:fleet.k in
    Hashtbl.replace fleet.layers node_id l;
    l

(* Feed every live node's layer with its current view contents. *)
let feed_from_views fleet runner =
  Array.iter
    (fun node ->
      let l = layer fleet ~node_id:node.Protocol.node_id in
      List.iter (fun id -> observe l id) (View.ids node.Protocol.view))
    (Runner.live_nodes runner)

(* Fraction of individual samplers whose output is identical to a reference
   snapshot — quantifies the *lack* of temporal independence of persistent
   samples.  (Per sampler, not per node: a single still-converging sampler
   should not mark a node's other seven as changed.) *)
let unchanged_fraction fleet ~reference =
  let total = ref 0 and unchanged = ref 0 in
  Hashtbl.iter
    (fun node_id l ->
      match Hashtbl.find_opt reference node_id with
      | None -> ()
      | Some old ->
        let old = Array.of_list old in
        Array.iteri
          (fun i s ->
            if i < Array.length old then begin
              incr total;
              if s.best_id = old.(i) then incr unchanged
            end)
          l.samplers)
    fleet.layers;
  if !total = 0 then 0. else float_of_int !unchanged /. float_of_int !total

(* Per-node raw outputs including empty samplers (-1), aligned by sampler
   index, for unchanged_fraction snapshots. *)
let raw_snapshot fleet =
  let out = Hashtbl.create (Hashtbl.length fleet.layers) in
  Hashtbl.iter
    (fun node_id l ->
      Hashtbl.replace out node_id
        (Array.to_list (Array.map (fun s -> s.best_id) l.samplers)))
    fleet.layers;
  out

let snapshot fleet =
  let out = Hashtbl.create (Hashtbl.length fleet.layers) in
  Hashtbl.iter (fun node_id l -> Hashtbl.replace out node_id (samples l)) fleet.layers;
  out
