(** Binary wire codec for S&F messages carried as UDP datagrams.

    Two versions behind one magic byte.  v1 is the historical
    one-message-per-datagram layout, preserved bit-for-bit ({!encode} is
    the v1 encoder).  v2 batches up to {!max_batch} messages per datagram
    in CRC-guarded frames — a corrupted frame rejects that frame alone —
    and adds a tiny hello datagram advertising a port range as v2-capable,
    the unit of per-peer version negotiation. *)

val message_size : int
(** v1 encoded size in bytes (66). *)

val payload_size : int
(** The version-independent message payload (64 bytes: two 32-byte
    entries). *)

val hello_size : int
(** v2 hello datagram size (7). *)

val batch_header_size : int
(** v2 batch header: magic, version, kind, count (4). *)

val frame_size : int
(** One v2 batch frame: payload + CRC-32 (68). *)

val max_batch : int
(** Most messages per v2 datagram (16). *)

val max_datagram_size : int
(** The largest datagram either version produces: a full v2 batch
    ([batch_header_size + max_batch * frame_size]). *)

val recv_buffer_size : int
(** [max_datagram_size + 1]: the receive-buffer size that lets a receiver
    hold any valid datagram whole and still detect oversized foreign
    traffic — recvfrom truncates a UDP payload to the buffer, so the
    one-byte headroom makes [length > max_datagram_size] observable. *)

val frame_offset : int -> int
(** Byte offset of batch frame [i] inside a v2 batch datagram. *)

type error =
  | Too_short of int             (** shorter than its layout requires *)
  | Bad_magic of char
  | Unsupported_version of char  (** version byte above the decoder's ceiling *)
  | Oversized of int             (** longer than its version's layout allows *)
  | Bad_kind of char             (** v2 kind byte neither hello nor batch *)
  | Bad_count of int             (** batch count outside [1, max_batch] *)

val pp_error : Format.formatter -> error -> unit

val crc32 : bytes -> pos:int -> len:int -> int
(** CRC-32 (IEEE, reflected) of a byte range, as used by v2 frames. *)

(** {2 v1 (historical layout, byte-identical)} *)

val encode : Sf_core.Protocol.message -> bytes

val decode : bytes -> length:int -> (Sf_core.Protocol.message, error) result
(** Decode the first [length] bytes of a received v1 datagram (the
    historical decoder: under-length datagrams are [Too_short]; trailing
    bytes are ignored, as before the v2 layer existed). *)

(** {2 v2} *)

val encode_batch : Sf_core.Protocol.message list -> bytes list
(** Encode messages as v2 batch datagrams, splitting greedily so every
    datagram carries at most {!max_batch} frames; [[]] maps to [[]]. *)

val encode_hello : lo:int -> hi:int -> bytes
(** Advertise UDP ports [lo..hi] as v2 speakers.  Raises
    [Invalid_argument] outside [0, 65535] or when [hi < lo]. *)

val corrupt_frame : bytes -> int -> unit
(** Flip one payload byte of frame [i] in an encoded batch — the fault
    injector's hook for corruption that must reject exactly one frame. *)

type batch = {
  messages : Sf_core.Protocol.message list;
      (** CRC-clean frames, in batch order *)
  bad_crc : int;      (** frames rejected by their CRC *)
  truncated : bool;   (** datagram shorter than its declared count *)
}

type datagram =
  | Msg_v1 of Sf_core.Protocol.message
  | Batch of batch
  | Hello of { lo : int; hi : int }

val decode_datagram :
  ?max_version:int -> bytes -> length:int -> (datagram, error) result
(** Version-dispatching decoder.  [max_version] (default 2) is the
    receiving host's ceiling: a v1-configured host passes 1 and sees v2
    traffic as [Unsupported_version], exactly as a historical binary
    would.  A truncated batch still yields its complete frames with
    [truncated = true]; CRC-rejected frames are counted, not fatal. *)
