(* Observability experiments (OBS): the cost and the payoff of the sf_obs
   layer on one strict-audited 1000-node system.

   - overhead: wall time of a strict-audit run with the default private
     metrics bundle vs the same run with a shared registry, an attached
     tracer and a view-scan span — the acceptance budget is < 5%;
   - Lemma 6.6 balance read twice, from the world counters and straight
     from the registry, checking the registry migration is a pure rename;
   - degree-marginal TVD of the instrumented run against the degree MC.

   The numbers are also returned as a Json value; the harness main merges
   it with per-section wall times into the BENCH_obs.json artifact.  (The
   payload used to be stashed in a module-level ref — a shared-state
   hazard under sf_analyze; now it flows through the return value.) *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Invariant = Sf_check.Invariant
module Pmf = Sf_stats.Pmf
module Degree_mc = Sf_analysis.Degree_mc
module Metrics = Sf_obs.Metrics
module Json = Sf_obs.Json

let view_size = 40
let lower_threshold = 18
let loss = 0.05
let population = 1000
let rounds = 120

let make_system ?obs ~seed () =
  let config = Protocol.make_config ~view_size ~lower_threshold in
  let rng = Sf_prng.Rng.create (seed + 1) in
  let topology = Topology.regular rng ~n:population ~out_degree:30 in
  Runner.create ?obs ~seed ~n:population ~loss_rate:loss ~config ~topology ()

(* One strict-audited run; [obs] decides the instrumentation level. *)
let audited_run ?obs ~seed () =
  let r = make_system ?obs ~seed () in
  let stats = Invariant.audited_run r ~rounds in
  (r, stats)

(* Wall and per-process CPU seconds of one audited run.  The CPU clock is
   the one overhead ratios are gated on: on a busy or single-core machine
   any other process that preempts the run inflates wall time, while CPU
   time charges each configuration exactly for the work it did. *)
let time_run ?obs ~seed () =
  let wall = Sf_obs.Clock.stopwatch ~clock:Sf_obs.Clock.wall in
  let cpu = Sf_obs.Clock.stopwatch ~clock:Sf_obs.Clock.cpu in
  let _r, _ = audited_run ?obs ~seed () in
  (wall (), cpu ())

let full_bundle () =
  let metrics = Metrics.create () in
  let tracer = Sf_obs.Trace.create ~capacity:65536 in
  Sf_obs.Obs.create ~tracer ~metrics ()

(* Minimum of [reps] timings, alternating configurations so ambient load
   hits both equally. *)
let measure_overhead ~reps =
  let plain_w = ref infinity and full_w = ref infinity in
  let plain_c = ref infinity and full_c = ref infinity in
  for rep = 0 to reps - 1 do
    let seed = 1000 + rep in
    let w, c = time_run ~seed () in
    plain_w := Float.min !plain_w w;
    plain_c := Float.min !plain_c c;
    let w, c = time_run ~obs:(full_bundle ()) ~seed () in
    full_w := Float.min !full_w w;
    full_c := Float.min !full_c c
  done;
  ((!plain_w, !plain_c), (!full_w, !full_c))

let empirical_outdegree span r =
  Sf_obs.Span.time span (fun () ->
      Pmf.of_samples
        (Array.map (fun node -> Protocol.degree node) (Runner.live_nodes r)))

let run () =
  Output.section "OBS" "Observability layer: overhead, balance, degree TVD";
  Fmt.pr
    "One strict-audited system (n=%d, s=%d, dL=%d, loss=%g, %d rounds),@\n\
     run plain (private metrics, no tracer) and fully instrumented@\n\
     (shared registry + %d-record tracer + spans).@."
    population view_size lower_threshold loss rounds 65536;

  (* --- Overhead --- *)
  let (plain_w, plain_c), (full_w, full_c) = measure_overhead ~reps:5 in
  let ratio = full_c /. plain_c in
  Output.subsection "overhead (min of 5 alternated runs)";
  Output.table
    [ "configuration"; "wall s"; "cpu s" ]
    [
      [ "plain (no-op: no tracer)"; Fmt.str "%.3f" plain_w; Fmt.str "%.3f" plain_c ];
      [
        "full (registry + tracer + span)";
        Fmt.str "%.3f" full_w;
        Fmt.str "%.3f" full_c;
      ];
      [ "ratio"; Fmt.str "%.3f" (full_w /. plain_w); Fmt.str "%.3f" ratio ];
    ];
  Output.check "full instrumentation costs < 5% CPU time" (ratio < 1.05);

  (* --- Lemma 6.6 balance, counters vs registry --- *)
  let obs = full_bundle () in
  let r = make_system ~obs ~seed:4242 () in
  Runner.run_rounds r 300;
  let base = Runner.world_counters r in
  Runner.run_rounds r 300;
  let rates = Runner.rates_since r base in
  let m = Sf_obs.Obs.metrics obs in
  let registry_count name =
    match Metrics.find_counter m name with
    | Some c -> Metrics.count c
    | None -> -1
  in
  let now = Runner.world_counters r in
  Output.subsection "Lemma 6.6 balance (per send, rounds 300-600)";
  Output.table
    [ "rate"; "value" ]
    [
      [ "duplication"; Output.f4 rates.Runner.duplication ];
      [ "loss"; Output.f4 rates.Runner.loss ];
      [ "deletion"; Output.f4 rates.Runner.deletion ];
      [
        "residual dup - (loss+del)";
        Output.f4 (rates.Runner.duplication -. (rates.Runner.loss +. rates.Runner.deletion));
      ];
    ];
  Output.check "duplication ~ loss + deletion (Lemma 6.6)"
    (Float.abs (rates.Runner.duplication -. (rates.Runner.loss +. rates.Runner.deletion))
    < 0.01);
  Output.check "registry counters = world counters"
    (registry_count "runner_sends" = now.Runner.sends
    && registry_count "runner_duplications" = now.Runner.duplications
    && registry_count "runner_deletions" = now.Runner.deletions
    && registry_count "net_lost" = now.Runner.messages_lost);

  (* --- Degree-marginal TVD against the degree MC --- *)
  let scan_span = Sf_obs.Span.create ~clock:Sf_obs.Clock.wall m "view_scan_seconds" in
  let empirical = empirical_outdegree scan_span r in
  let mc =
    Degree_mc.solve (Degree_mc.make_params ~view_size ~lower_threshold ~loss ())
  in
  let tvd = Pmf.tv_distance empirical (Degree_mc.even_outdegree mc) in
  Output.subsection "degree marginal vs degree MC";
  Fmt.pr "  TVD(empirical outdegree, degree-MC outdegree) = %.4f@." tvd;
  Output.check "degree marginal matches the MC (TVD < 0.1)" (tvd < 0.1);
  (match Sf_obs.Obs.tracer obs with
  | None -> ()
  | Some tr ->
    Fmt.pr "  tracer: %d recorded, %d held, %d dropped to wraparound@."
      (Sf_obs.Trace.recorded tr) (Sf_obs.Trace.length tr) (Sf_obs.Trace.dropped tr));

  Json.Obj
    [
      ( "overhead",
        Json.Obj
          [
            ("plain_wall_seconds", Json.Float plain_w);
            ("full_wall_seconds", Json.Float full_w);
            ("plain_cpu_seconds", Json.Float plain_c);
            ("full_cpu_seconds", Json.Float full_c);
            ("cpu_ratio", Json.Float ratio);
          ] );
      ( "lemma_6_6",
        Json.Obj
          [
            ("duplication", Json.Float rates.Runner.duplication);
            ("loss", Json.Float rates.Runner.loss);
            ("deletion", Json.Float rates.Runner.deletion);
            ( "residual",
              Json.Float
                (rates.Runner.duplication
                -. (rates.Runner.loss +. rates.Runner.deletion)) );
          ] );
      ("degree_tvd", Json.Float tvd);
      ("metrics", Metrics.to_json m);
    ]
