(* Tests for the sf_lint rule engine: every rule fires on a bad fixture,
   stays quiet on a clean one, and the allowlist both suppresses findings
   and reports its own stale entries. *)

module Lint = Sf_lint_rules.Lint_rules

let rules_of findings = List.map (fun f -> f.Lint.rule) findings

let check_fires name ~rule ~path source =
  let findings = Lint.check_file ~path source in
  Alcotest.(check bool)
    (name ^ ": fires " ^ rule)
    true
    (List.mem rule (rules_of findings))

let check_quiet name ~path source =
  let findings = Lint.check_file ~path source in
  Alcotest.(check (list string)) (name ^ ": quiet") [] (rules_of findings)

(* A representative clean library module: seeded randomness, logs-based
   reporting, total stdlib calls only. *)
let clean_module =
  {|
let pick rng xs = Sf_prng.Rng.choose rng xs

let head = function [] -> None | x :: _ -> Some x

let report ppf x = Fmt.pf ppf "value %d@." x
|}

(* --- determinism --- *)

let test_determinism_fires () =
  check_fires "ambient Random" ~rule:"determinism" ~path:"lib/core/bad.ml"
    "let x = Random.int 10";
  check_fires "polymorphic hash" ~rule:"determinism" ~path:"lib/core/bad.ml"
    "let h = Hashtbl.hash key";
  (* The rule also covers executables and benches, not just lib/. *)
  check_fires "bench too" ~rule:"determinism" ~path:"bench/bad.ml"
    "let x = Random.bool ()"

let test_determinism_quiet () =
  check_quiet "clean module" ~path:"lib/core/good.ml" clean_module;
  (* Qualified submodules of other libraries do not match. *)
  check_quiet "someone's Random submodule" ~path:"lib/core/good.ml"
    "let x = Mylib.Random.int 10";
  (* Mentions inside comments and strings are not code. *)
  check_quiet "comment mention" ~path:"lib/core/good.ml"
    "(* never call Random.int or Unix.gettimeofday here *)\nlet x = 1";
  check_quiet "string mention" ~path:"lib/core/good.ml"
    {|let usage = "do not use Sys.time"|};
  check_quiet "nested comment" ~path:"lib/core/good.ml"
    "(* outer (* Random.int *) still comment *)\nlet x = 1"

(* --- clock-discipline --- *)

let test_clock_discipline_fires () =
  check_fires "wall clock" ~rule:"clock-discipline" ~path:"lib/core/bad.ml"
    "let t = Unix.gettimeofday ()";
  check_fires "process clock" ~rule:"clock-discipline" ~path:"lib/core/bad.ml"
    "let t = Sys.time ()";
  (* Executables and benches must inject clocks too. *)
  check_fires "bench too" ~rule:"clock-discipline" ~path:"bench/bad.ml"
    "let t0 = Unix.gettimeofday ()"

let test_clock_discipline_exempts_obs_clock () =
  (* The single sanctioned wall-clock site in the tree. *)
  check_quiet "lib/obs/clock.ml" ~path:"lib/obs/clock.ml"
    "let wall = Unix.gettimeofday";
  (* Only that exact path — a neighbour module gets no exemption. *)
  check_fires "lib/obs/span.ml not exempt" ~rule:"clock-discipline"
    ~path:"lib/obs/span.ml" "let t = Unix.gettimeofday ()"

(* --- no-obj-magic --- *)

let test_obj_magic () =
  check_fires "magic" ~rule:"no-obj-magic" ~path:"lib/core/bad.ml"
    "let f (x : int) : string = Obj.magic x";
  check_fires "magic in test code too" ~rule:"no-obj-magic" ~path:"test/bad.ml"
    "let y = Obj.magic 0";
  check_quiet "no magic" ~path:"lib/core/good.ml" clean_module

(* --- no-partial --- *)

let test_partial_fires () =
  check_fires "List.hd" ~rule:"no-partial" ~path:"lib/core/bad.ml"
    "let x = List.hd xs";
  check_fires "List.tl" ~rule:"no-partial" ~path:"lib/core/bad.ml"
    "let x = List.tl xs";
  check_fires "List.nth" ~rule:"no-partial" ~path:"lib/core/bad.ml"
    "let x = List.nth xs 3";
  check_fires "Option.get" ~rule:"no-partial" ~path:"lib/core/bad.ml"
    "let x = Option.get o"

let test_partial_quiet_on_total_variants () =
  check_quiet "List.nth_opt is total" ~path:"lib/core/good.ml"
    "let x = List.nth_opt xs 3";
  check_quiet "List.hd renamed elsewhere" ~path:"lib/core/good.ml"
    "let x = MyList.hd xs"

(* --- no-print --- *)

let test_print_scoped_to_lib () =
  check_fires "printf in lib" ~rule:"no-print" ~path:"lib/stats/bad.ml"
    {|let () = Printf.printf "%d" 3|};
  check_fires "print_endline in lib" ~rule:"no-print" ~path:"lib/stats/bad.ml"
    {|let () = print_endline "hi"|};
  (* Executables may print; the rule is about library hygiene. *)
  check_quiet "print in bin is fine" ~path:"bin/tool.ml"
    {|let () = print_endline "hi"|};
  check_quiet "print in bench is fine" ~path:"bench/b.ml"
    {|let () = Printf.printf "x"|}

(* --- missing-mli --- *)

let test_missing_mli () =
  let findings =
    Lint.check_missing_mli
      [ "lib/core/a.ml"; "lib/core/a.mli"; "lib/core/b.ml"; "bin/main.ml" ]
  in
  Alcotest.(check (list string))
    "only the uncovered lib module" [ "lib/core/b.ml" ]
    (List.map (fun f -> f.Lint.path) findings);
  Alcotest.(check (list string)) "rule id" [ "missing-mli" ] (rules_of findings)

let test_check_files_combines () =
  let findings =
    Lint.check_files
      [
        ("lib/core/a.ml", "let x = List.hd xs");
        ("lib/core/a.mli", "val x : int");
        ("lib/core/b.ml", "let y = 1");
      ]
  in
  let rules = List.sort_uniq compare (rules_of findings) in
  Alcotest.(check (list string)) "token + file-set rules" [ "missing-mli"; "no-partial" ] rules

(* --- quoted strings {|…|} / {id|…|id} ---

   A quote or comment opener inside a quoted string used to desync the
   stripper and corrupt every lexical rule for the rest of the file. *)

let test_quoted_strings_do_not_desync () =
  (* The unbalanced '"' inside {|…|} must not open a string: the Random.
     call after it is real code and must still fire. *)
  check_fires "quote inside {|...|}" ~rule:"determinism" ~path:"lib/core/bad.ml"
    "let s = {|he said \"hi|}\nlet x = Random.int 3";
  (* Same with a comment opener in the payload. *)
  check_fires "comment opener inside {|...|}" ~rule:"determinism"
    ~path:"lib/core/bad.ml" "let s = {|open (* not a comment|}\nlet x = Random.int 3";
  (* Delimited form: the payload may even contain |} of a shorter id. *)
  check_fires "delimited {id|...|id}" ~rule:"determinism" ~path:"lib/core/bad.ml"
    "let s = {ext|contains |} and \" quote|ext}\nlet x = Random.int 3"

let test_quoted_string_contents_are_not_code () =
  (* Mentions inside the payload are data, not code. *)
  check_quiet "token inside {|...|}" ~path:"lib/core/good.ml"
    "let usage = {|never call Random.int here|}";
  check_quiet "token inside {id|...|id}" ~path:"lib/core/good.ml"
    "let usage = {doc|List.hd raises on []|doc}";
  (* Quoted strings inside comments are recognised by the OCaml lexer:
     an unbalanced comment closer within one must not end the comment. *)
  check_quiet "quoted string inside comment" ~path:"lib/core/good.ml"
    "(* example: {|*)|} still comment *) let x = 1";
  (* A lone '{' that opens no quoted string is ordinary code. *)
  check_fires "brace is not a quoted string" ~rule:"determinism"
    ~path:"lib/core/bad.ml" "let r = { contents = Random.int 3 }"

let test_unterminated_quoted_string () =
  (* Unterminated payload blanks to EOF rather than looping or raising. *)
  check_quiet "unterminated {|" ~path:"lib/core/good.ml"
    "let s = {|Random.int with no close"

(* --- line numbers --- *)

let test_line_numbers () =
  match Lint.check_file ~path:"lib/x/bad.ml" "let a = 1\nlet b = List.hd xs\n" with
  | [ f ] -> Alcotest.(check int) "line 2" 2 f.Lint.line
  | fs -> Alcotest.fail (Fmt.str "expected one finding, got %d" (List.length fs))

(* --- allowlist --- *)

let test_allowlist_parse () =
  let content =
    "# comment\n\nlib/net/cluster.ml determinism # trailing comment\nbench/main.ml *\n"
  in
  match Lint.parse_allowlist content with
  | Ok [ a; b ] ->
    Alcotest.(check string) "path" "lib/net/cluster.ml" a.Lint.allow_path;
    Alcotest.(check string) "rule" "determinism" a.Lint.allow_rule;
    Alcotest.(check string) "wildcard" "*" b.Lint.allow_rule
  | Ok entries -> Alcotest.fail (Fmt.str "expected 2 entries, got %d" (List.length entries))
  | Error e -> Alcotest.fail e

let test_allowlist_rejects_garbage () =
  match Lint.parse_allowlist "one two three\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_allowlist_suppresses () =
  let findings = Lint.check_file ~path:"lib/core/bad.ml" "let x = Random.int 3" in
  Alcotest.(check bool) "finding exists" true (findings <> []);
  let allow = { Lint.allow_path = "lib/core/bad.ml"; allow_rule = "determinism" } in
  let kept, stale = Lint.apply_allowlist [ allow ] findings in
  Alcotest.(check (list string)) "suppressed" [] (rules_of kept);
  Alcotest.(check int) "entry was used" 0 (List.length stale)

let test_allowlist_is_rule_specific () =
  let findings =
    Lint.check_file ~path:"lib/core/bad.ml" "let x = Random.int (List.hd xs)"
  in
  let allow = { Lint.allow_path = "lib/core/bad.ml"; allow_rule = "determinism" } in
  let kept, _ = Lint.apply_allowlist [ allow ] findings in
  Alcotest.(check (list string)) "no-partial survives" [ "no-partial" ] (rules_of kept)

let test_allowlist_reports_stale_entries () =
  let allow = { Lint.allow_path = "lib/core/clean.ml"; allow_rule = "determinism" } in
  let kept, stale = Lint.apply_allowlist [ allow ] [] in
  Alcotest.(check int) "nothing kept" 0 (List.length kept);
  Alcotest.(check int) "entry is stale" 1 (List.length stale)

(* --- the real tree is clean ---

   The authoritative run is `dune build @lint` (wired into CI); here we
   spot-check the engine against two real sources to guard against the
   stripper or tokenizer regressing in a way fixtures miss. *)

let read path = In_channel.with_open_bin path In_channel.input_all

let test_real_sources () =
  let view = read "../lib/core/view.ml" in
  check_quiet "lib/core/view.ml" ~path:"lib/core/view.ml" view;
  (* Since the ?now default moved to Sf_obs.Clock.wall, the cluster driver
     is clock-clean without any allowlist entry. *)
  let cluster = read "../lib/net/cluster.ml" in
  check_quiet "lib/net/cluster.ml" ~path:"lib/net/cluster.ml" cluster;
  (* The one sanctioned wall-clock site really holds a wall clock (the same
     source fires under any other path) — and really is exempt. *)
  let clock = read "../lib/obs/clock.ml" in
  check_fires "clock.ml holds a wall clock" ~rule:"clock-discipline"
    ~path:"lib/core/clock.ml" clock;
  check_quiet "lib/obs/clock.ml" ~path:"lib/obs/clock.ml" clock

let suite =
  [
    Alcotest.test_case "determinism fires" `Quick test_determinism_fires;
    Alcotest.test_case "determinism quiet" `Quick test_determinism_quiet;
    Alcotest.test_case "clock-discipline fires" `Quick test_clock_discipline_fires;
    Alcotest.test_case "clock-discipline exempts lib/obs/clock.ml" `Quick
      test_clock_discipline_exempts_obs_clock;
    Alcotest.test_case "no-obj-magic" `Quick test_obj_magic;
    Alcotest.test_case "no-partial fires" `Quick test_partial_fires;
    Alcotest.test_case "no-partial quiet on _opt" `Quick test_partial_quiet_on_total_variants;
    Alcotest.test_case "no-print scoped to lib" `Quick test_print_scoped_to_lib;
    Alcotest.test_case "missing-mli" `Quick test_missing_mli;
    Alcotest.test_case "check_files combines rules" `Quick test_check_files_combines;
    Alcotest.test_case "quoted strings do not desync" `Quick
      test_quoted_strings_do_not_desync;
    Alcotest.test_case "quoted string contents are not code" `Quick
      test_quoted_string_contents_are_not_code;
    Alcotest.test_case "unterminated quoted string" `Quick
      test_unterminated_quoted_string;
    Alcotest.test_case "line numbers" `Quick test_line_numbers;
    Alcotest.test_case "allowlist parse" `Quick test_allowlist_parse;
    Alcotest.test_case "allowlist rejects garbage" `Quick test_allowlist_rejects_garbage;
    Alcotest.test_case "allowlist suppresses" `Quick test_allowlist_suppresses;
    Alcotest.test_case "allowlist is rule-specific" `Quick test_allowlist_is_rule_specific;
    Alcotest.test_case "allowlist reports stale entries" `Quick test_allowlist_reports_stale_entries;
    Alcotest.test_case "real sources" `Quick test_real_sources;
  ]
