(* Tests for the fault-injection layer (lib/faults): the Gilbert-Elliott
   stationary mapping and its empirical convergence, the scenario language,
   the injector's verdict pipeline, bit-for-bit identity of the default
   scenario, and end-to-end partition / crash runs under the strict
   invariant audit. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Properties = Sf_core.Properties
module Churn = Sf_core.Churn
module Loss = Sf_faults.Loss
module Scenario = Sf_faults.Scenario
module Injector = Sf_faults.Injector
module Invariant = Sf_check.Invariant

let scenario_of_string s =
  match Scenario.of_string s with
  | Ok sc -> sc
  | Error e -> Alcotest.fail ("scenario parse: " ^ e)

(* --- Gilbert-Elliott mapping --- *)

(* The documented inversion: given a target stationary mean and mean burst
   length, [gilbert_elliott] must return a chain whose stationary loss and
   burst length are exactly those targets. *)
let test_ge_mapping () =
  let ge = Loss.gilbert_elliott ~mean_loss:0.2 ~mean_burst:8.0 () in
  Alcotest.(check (float 1e-12)) "stationary loss" 0.2 (Loss.stationary_loss ge);
  Alcotest.(check (float 1e-12)) "mean burst length" 8.0 (Loss.mean_burst_length ge);
  let ge =
    Loss.gilbert_elliott ~loss_good:0.01 ~loss_bad:0.9 ~mean_loss:0.3
      ~mean_burst:5.0 ()
  in
  Alcotest.(check (float 1e-12)) "lossy good state still hits the mean" 0.3
    (Loss.stationary_loss ge);
  let rejects f = match f () with
    | (_ : Loss.ge) -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  rejects (fun () -> Loss.gilbert_elliott ~mean_loss:1.5 ~mean_burst:8.0 ());
  rejects (fun () -> Loss.gilbert_elliott ~mean_loss:0.2 ~mean_burst:0.5 ());
  rejects (fun () ->
      (* mean above the bad-state loss rate is unreachable *)
      Loss.gilbert_elliott ~loss_bad:0.4 ~mean_loss:0.5 ~mean_burst:4.0 ())

(* Empirical convergence of the two-state chain to its stationary mean:
   1e6 seeded draws must land within 1% (0.002 absolute at mean 0.2). *)
let test_ge_convergence () =
  let ge = Loss.gilbert_elliott ~mean_loss:0.2 ~mean_burst:8.0 () in
  let process = Loss.create (Loss.Gilbert_elliott ge) in
  let rng = Sf_prng.Rng.create 7 in
  let draws = 1_000_000 in
  let drops = ref 0 in
  for _ = 1 to draws do
    (* [chance] is the legacy i.i.d. rate; a GE process ignores it. *)
    if Loss.drop process rng ~chance:0.9 ~src:0 ~dst:1 then incr drops
  done;
  let observed = float_of_int !drops /. float_of_int draws in
  Alcotest.(check bool)
    (Fmt.str "observed %.4f within 0.002 of 0.2" observed)
    true
    (Float.abs (observed -. 0.2) < 0.002)

(* Per-link processes use the supplied rate function, not [chance]. *)
let test_per_link () =
  let process =
    Loss.create (Loss.Per_link (fun src dst -> if src = dst - 1 then 1.0 else 0.0))
  in
  let rng = Sf_prng.Rng.create 5 in
  Alcotest.(check bool) "doomed link drops" true
    (Loss.drop process rng ~chance:0.0 ~src:3 ~dst:4);
  Alcotest.(check bool) "clean link delivers" false
    (Loss.drop process rng ~chance:0.0 ~src:3 ~dst:9)

(* --- Scenario language --- *)

let test_scenario_roundtrip () =
  let text =
    "ge:0.2:8;partition@10-20:2;crash@25-35:0-9;delay@40-45:4;corrupt@50-55:0.01"
  in
  let sc = scenario_of_string text in
  Alcotest.(check int) "window count" 4 (List.length sc.Scenario.windows);
  (match sc.Scenario.loss with
  | Loss.Gilbert_elliott ge ->
    Alcotest.(check (float 1e-9)) "mean parsed" 0.2 (Loss.stationary_loss ge);
    Alcotest.(check (float 1e-9)) "burst parsed" 8.0 (Loss.mean_burst_length ge)
  | Loss.Iid | Loss.Per_link _ -> Alcotest.fail "expected a GE loss model");
  Alcotest.(check string) "prints back to itself" text (Scenario.to_string sc);
  let again = scenario_of_string (Scenario.to_string sc) in
  Alcotest.(check string) "stable under reparse" text (Scenario.to_string again);
  Alcotest.(check string) "default renders as iid" "iid"
    (Scenario.to_string Scenario.default);
  Alcotest.(check bool) "default reparses to no windows" true
    ((scenario_of_string "iid").Scenario.windows = [])

let test_scenario_rejects_malformed () =
  List.iter
    (fun bad ->
      match Scenario.of_string bad with
      | Ok _ -> Alcotest.fail (Fmt.str "accepted malformed scenario %S" bad)
      | Error _ -> ())
    [
      "ge:0.2" (* missing burst *);
      "ge:1.5:8" (* unreachable mean *);
      "partition@20-10:2" (* empty window *);
      "partition@0-10:1" (* one part is no partition *);
      "crash@0-10:5-2" (* inverted node range *);
      "delay@0-10:0" (* non-positive factor *);
      "corrupt@0-10:1.5" (* rate above 1 *);
      "iid;ge:0.1:4" (* two loss models *);
      "bogus" (* unknown item *);
    ]

(* --- Validation unification: parse errors come from validate_window --- *)

(* Parsing is structural only; every semantic range check routes through
   [validate_window], so the parser's error messages are the validator's
   messages verbatim. *)
let test_parse_errors_from_validate_window () =
  let error s =
    match Scenario.of_string s with
    | Ok _ -> Alcotest.fail (Fmt.str "accepted %S" s)
    | Error e -> e
  in
  let validator_message w =
    match Scenario.validate_window w with
    | () -> Alcotest.fail "validator accepted a malformed window"
    | exception Invalid_argument m -> m
  in
  Alcotest.(check string)
    "empty window: parser = validator"
    (validator_message
       { Scenario.start = 20.; stop = 10.; fault = Scenario.Partition { parts = 2 } })
    (error "partition@20-10:2");
  Alcotest.(check string)
    "one-part partition: parser = validator"
    (validator_message
       { Scenario.start = 0.; stop = 10.; fault = Scenario.Partition { parts = 1 } })
    (error "partition@0-10:1");
  Alcotest.(check string)
    "inverted crash range: parser = validator"
    (validator_message
       { Scenario.start = 0.; stop = 10.; fault = Scenario.Crash { first = 5; last = 2 } })
    (error "crash@0-10:5-2");
  Alcotest.(check string)
    "zero-length window: parser = validator"
    (validator_message
       { Scenario.start = 7.; stop = 7.; fault = Scenario.Delay { factor = 2. } })
    (error "delay@7-7:2")

(* --- Crash-window overlap rejection --- *)

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let test_crash_overlap_rejected () =
  (* Time overlap and node-range overlap together: rejected, with both
     windows named in the message. *)
  (match Scenario.of_string "crash@0-10:0-5;crash@5-15:3-8" with
  | Ok _ -> Alcotest.fail "accepted overlapping crash windows"
  | Error e ->
    Alcotest.(check bool)
      (Fmt.str "message mentions the overlap (%s)" e)
      true
      (contains_sub ~sub:"overlap" e));
  (* The same rule through the programmatic constructor. *)
  (match
     Scenario.make
       ~windows:
         [
           { Scenario.start = 0.; stop = 10.; fault = Scenario.Crash { first = 0; last = 5 } };
           { Scenario.start = 5.; stop = 15.; fault = Scenario.Crash { first = 3; last = 8 } };
         ]
       ()
   with
  | _ -> Alcotest.fail "make accepted overlapping crash windows"
  | exception Invalid_argument e ->
    Alcotest.(check bool) "make names the overlap" true
      (contains_sub ~sub:"overlap" e));
  (* Disjoint node ranges: allowed even when the times overlap. *)
  (match Scenario.of_string "crash@0-10:0-5;crash@5-15:6-9" with
  | Ok sc -> Alcotest.(check int) "two windows kept" 2 (List.length sc.Scenario.windows)
  | Error e -> Alcotest.fail ("rejected disjoint-range crashes: " ^ e));
  (* Disjoint times: allowed even on the same node range. *)
  (match Scenario.of_string "crash@0-10:0-5;crash@10-20:0-5" with
  | Ok sc -> Alcotest.(check int) "back-to-back kept" 2 (List.length sc.Scenario.windows)
  | Error e -> Alcotest.fail ("rejected back-to-back crashes: " ^ e));
  (* Same-class windows without a node range still compose freely — the
     overlapping-partition recovery test depends on this. *)
  match Scenario.of_string "partition@5-60:2;partition@40-105:3" with
  | Ok sc -> Alcotest.(check int) "overlapping partitions kept" 2 (List.length sc.Scenario.windows)
  | Error e -> Alcotest.fail ("rejected overlapping partitions: " ^ e)

(* --- Injector verdicts --- *)

let test_injector_verdicts () =
  let scenario = scenario_of_string "partition@0-10:2;corrupt@20-30:1" in
  let inj = Injector.create ~scenario ~n:10 () in
  let clock = ref 5.0 in
  Injector.set_clock inj (fun () -> !clock);
  let rng = Sf_prng.Rng.create 3 in
  let judge ~src ~dst = Injector.judge inj rng ~chance:0.0 ~src ~dst in
  (* Blocks at parts=2, n=10: ids 0-4 vs 5-9. *)
  (match judge ~src:0 ~dst:9 with
  | Injector.Drop Injector.Partitioned -> ()
  | _ -> Alcotest.fail "cross-block send must be partitioned");
  (match judge ~src:0 ~dst:4 with
  | Injector.Deliver -> ()
  | _ -> Alcotest.fail "same-block send must deliver");
  (match judge ~src:(-1) ~dst:9 with
  | Injector.Deliver -> ()
  | _ -> Alcotest.fail "out-of-band sends (src -1) bypass the partition");
  clock := 25.0;
  (match judge ~src:0 ~dst:9 with
  | Injector.Corrupt_payload -> ()
  | _ -> Alcotest.fail "corruption window at rate 1 must corrupt");
  clock := 50.0;
  (match judge ~src:0 ~dst:9 with
  | Injector.Deliver -> ()
  | _ -> Alcotest.fail "no active window: deliver");
  let stats = Injector.statistics inj in
  Alcotest.(check int) "judged" 5 stats.Injector.judged;
  Alcotest.(check int) "partition drops" 1 stats.Injector.partition_drops;
  Alcotest.(check int) "corruptions" 1 stats.Injector.corruptions;
  Alcotest.(check bool) "window transitions recorded" true
    (stats.Injector.fault_transitions > 0)

let test_injector_crash () =
  let scenario = scenario_of_string "crash@0-10:3-5" in
  let inj = Injector.create ~scenario ~n:10 () in
  Injector.set_clock inj (fun () -> 5.0);
  let rng = Sf_prng.Rng.create 4 in
  Alcotest.(check bool) "inside range crashed" true (Injector.is_crashed inj 4);
  Alcotest.(check bool) "outside range alive" false (Injector.is_crashed inj 6);
  (match Injector.judge inj rng ~chance:0.0 ~src:0 ~dst:4 with
  | Injector.Drop Injector.Crashed -> ()
  | _ -> Alcotest.fail "send to a crashed node must drop");
  (match Injector.judge inj rng ~chance:0.0 ~src:0 ~dst:6 with
  | Injector.Deliver -> ()
  | _ -> Alcotest.fail "send between live nodes must deliver");
  Injector.set_clock inj (fun () -> 20.0);
  Alcotest.(check bool) "window over: resumed" false (Injector.is_crashed inj 4)

(* --- Bit-for-bit identity of the default scenario --- *)

(* The fault layer must be invisible when unused: a runner built with
   [Scenario.default] consumes exactly the RNG stream of a runner built
   with no scenario at all, so views, serials, and counters match. *)
let dump_views r =
  Array.to_list (Runner.live_nodes r)
  |> List.map (fun node ->
         (node.Protocol.node_id, Sf_core.View.entries node.Protocol.view))

let test_default_scenario_identity () =
  let make scenario =
    let n = 120 in
    let config = Protocol.make_config ~view_size:12 ~lower_threshold:4 in
    let topology = Topology.regular (Sf_prng.Rng.create 91) ~n ~out_degree:8 in
    let r = Runner.create ?scenario ~seed:90 ~n ~loss_rate:0.05 ~config ~topology () in
    Runner.run_rounds r 60;
    r
  in
  let plain = make None in
  let defaulted = make (Some Scenario.default) in
  Alcotest.(check bool) "identical views (ids, serials, anchors, births)" true
    (dump_views plain = dump_views defaulted);
  Alcotest.(check int) "identical mint bound" (Runner.minted_serials plain)
    (Runner.minted_serials defaulted);
  let np = Runner.network_statistics plain in
  let nd = Runner.network_statistics defaulted in
  Alcotest.(check int) "identical sends" np.Sf_engine.Network.messages_sent
    nd.Sf_engine.Network.messages_sent;
  Alcotest.(check int) "identical losses" np.Sf_engine.Network.messages_lost
    nd.Sf_engine.Network.messages_lost;
  let wp = Runner.world_counters plain in
  let wd = Runner.world_counters defaulted in
  Alcotest.(check bool) "identical world counters" true (wp = wd)

(* --- End-to-end fault runs --- *)

(* A partition splits the membership graph once it outlives view decay
   (small views, long window), and the out-of-band rendezvous rule re-knits
   it within a bounded number of rounds. *)
let test_partition_split_and_recovery () =
  let config = Protocol.make_config ~view_size:8 ~lower_threshold:2 in
  let n = 200 in
  let scenario = scenario_of_string "partition@5-105:2" in
  let topology = Topology.regular (Sf_prng.Rng.create 531) ~n ~out_degree:6 in
  let r =
    Runner.create ~scenario ~seed:530 ~n ~loss_rate:0.05 ~config ~topology ()
  in
  Runner.run_rounds r 110;
  Alcotest.(check bool) "100-round partition split the overlay" false
    (Properties.is_weakly_connected r);
  (match Churn.recover_connectivity ~max_rounds:50 r with
  | Some (rounds, rebootstraps) ->
    Alcotest.(check bool) "recovery used at least one rebootstrap" true
      (rebootstraps >= 1);
    Alcotest.(check bool) "recovery bounded" true (rounds <= 50)
  | None -> Alcotest.fail "recover_connectivity failed to re-knit the overlay");
  Alcotest.(check bool) "weakly connected after recovery" true
    (Properties.is_weakly_connected r)

(* A short partition with large views heals on its own: surviving
   cross-partition entries reconnect the graph within a few rounds. *)
let test_partition_heals_quickly () =
  let config = Protocol.make_config ~view_size:40 ~lower_threshold:18 in
  let n = 200 in
  let scenario = scenario_of_string "partition@20-50:2" in
  let topology = Topology.regular (Sf_prng.Rng.create 521) ~n ~out_degree:30 in
  let r =
    Runner.create ~scenario ~seed:520 ~n ~loss_rate:0.01 ~config ~topology ()
  in
  Runner.run_rounds r 50;
  (* The window just closed; give the overlay at most 5 rounds. *)
  let rec reconnect k =
    if Properties.is_weakly_connected r then k
    else if k >= 5 then -1
    else begin
      Runner.run_rounds r 1;
      reconnect (k + 1)
    end
  in
  let k = reconnect 0 in
  Alcotest.(check bool) "reconnected within 5 rounds of healing" true (k >= 0)

(* Overlapping partitions with different split arities: a 2-way cut from
   round 5 and a 3-way cut from round 40 are active together for 20
   rounds, then the 3-way cut persists alone.  The rendezvous rule must
   re-knit whatever is left standing — recovery can't assume the overlay
   fractured along a single clean cut. *)
let test_overlapping_partitions_recovery () =
  let config = Protocol.make_config ~view_size:8 ~lower_threshold:2 in
  let n = 200 in
  let scenario = scenario_of_string "partition@5-60:2;partition@40-105:3" in
  let topology = Topology.regular (Sf_prng.Rng.create 541) ~n ~out_degree:6 in
  let r =
    Runner.create ~scenario ~seed:540 ~n ~loss_rate:0.05 ~config ~topology ()
  in
  Runner.run_rounds r 110;
  Alcotest.(check bool) "overlapping partitions split the overlay" false
    (Properties.is_weakly_connected r);
  (match Churn.recover_connectivity ~max_rounds:60 r with
  | Some (rounds, rebootstraps) ->
    Alcotest.(check bool) "recovery rebootstrapped at least once" true
      (rebootstraps >= 1);
    Alcotest.(check bool) "recovery bounded" true (rounds <= 60)
  | None -> Alcotest.fail "recovery failed after overlapping partitions");
  Alcotest.(check bool) "weakly connected after recovery" true
    (Properties.is_weakly_connected r)

(* Repeated partitions: the same 2-way cut opens, heals, and opens again.
   Recovery after the second window must work exactly like after the
   first — [recover_connectivity] is reusable, not one-shot. *)
let test_repeated_partitions_recovery () =
  let config = Protocol.make_config ~view_size:8 ~lower_threshold:2 in
  let n = 200 in
  let scenario = scenario_of_string "partition@5-60:2;partition@70-150:2" in
  let topology = Topology.regular (Sf_prng.Rng.create 551) ~n ~out_degree:6 in
  let r =
    Runner.create ~scenario ~seed:550 ~n ~loss_rate:0.05 ~config ~topology ()
  in
  Runner.run_rounds r 65;
  if not (Properties.is_weakly_connected r) then
    (match Churn.recover_connectivity ~max_rounds:60 r with
    | Some _ -> ()
    | None -> Alcotest.fail "recovery failed after the first partition");
  Alcotest.(check bool) "connected between the windows" true
    (Properties.is_weakly_connected r);
  Runner.run_rounds r 90;
  Alcotest.(check bool) "second partition split the overlay again" false
    (Properties.is_weakly_connected r);
  (match Churn.recover_connectivity ~max_rounds:60 r with
  | Some (_, rebootstraps) ->
    Alcotest.(check bool) "second recovery rebootstrapped" true (rebootstraps >= 1)
  | None -> Alcotest.fail "recovery failed after the repeated partition");
  Alcotest.(check bool) "weakly connected after the second recovery" true
    (Properties.is_weakly_connected r)

(* A partition overlapping a crash wave: a tenth of the nodes freeze in
   the middle of a long partition and resume after it ends.  Once both
   windows close, recovery must re-knit the overlay including the
   resumed nodes' stale views. *)
let test_partition_overlapping_crash_recovery () =
  let config = Protocol.make_config ~view_size:8 ~lower_threshold:2 in
  let n = 200 in
  let scenario = scenario_of_string "partition@5-105:2;crash@50-115:0-19" in
  let topology = Topology.regular (Sf_prng.Rng.create 561) ~n ~out_degree:6 in
  let r =
    Runner.create ~scenario ~seed:560 ~n ~loss_rate:0.05 ~config ~topology ()
  in
  Runner.run_rounds r 120;
  Alcotest.(check bool) "nobody is crashed after both windows" true
    (not (Runner.is_crashed r 0));
  if not (Properties.is_weakly_connected r) then
    (match Churn.recover_connectivity ~max_rounds:60 r with
    | Some (_, rebootstraps) ->
      Alcotest.(check bool) "recovery rebootstrapped" true (rebootstraps >= 1)
    | None -> Alcotest.fail "recovery failed after partition + crash");
  Alcotest.(check bool) "weakly connected with resumed nodes" true
    (Properties.is_weakly_connected r)

(* Crash/restart under the strict audit: no invariant fires while a tenth
   of the system is frozen, boundary crossings resync the conservation
   baseline, and resumed nodes come back with their stale views. *)
let test_crash_restart_strict_audit () =
  let config = Protocol.make_config ~view_size:16 ~lower_threshold:6 in
  let n = 100 in
  let scenario = scenario_of_string "crash@10-20:0-9" in
  let topology = Topology.regular (Sf_prng.Rng.create 71) ~n ~out_degree:10 in
  let r =
    Runner.create ~scenario ~seed:70 ~n ~loss_rate:0.02 ~config ~topology ()
  in
  let stats = Invariant.audited_run ~mode:Invariant.Strict r ~rounds:40 in
  Alcotest.(check int) "no violations" 0 stats.Invariant.violation_count;
  Alcotest.(check bool) "window boundaries resynced the baseline" true
    (stats.Invariant.resyncs >= 2);
  (match Runner.fault_statistics r with
  | None -> Alcotest.fail "scenario installed but no fault statistics"
  | Some fs ->
    Alcotest.(check bool) "arrivals at crashed nodes were dropped" true
      (fs.Injector.crash_drops > 0));
  Alcotest.(check bool) "nobody is crashed after the window" true
    (not (Runner.is_crashed r 0));
  match Runner.find_node r 0 with
  | None -> Alcotest.fail "node 0 missing"
  | Some victim ->
    Alcotest.(check bool) "resumed node kept a usable view" true
      (Protocol.degree victim > 0)

let suite =
  [
    Alcotest.test_case "GE mapping is exact" `Quick test_ge_mapping;
    Alcotest.test_case "GE converges to the stationary mean (1e6 draws)" `Quick
      test_ge_convergence;
    Alcotest.test_case "per-link loss uses the link rate" `Quick test_per_link;
    Alcotest.test_case "scenario round-trips" `Quick test_scenario_roundtrip;
    Alcotest.test_case "scenario rejects malformed input" `Quick
      test_scenario_rejects_malformed;
    Alcotest.test_case "parse errors come from validate_window" `Quick
      test_parse_errors_from_validate_window;
    Alcotest.test_case "overlapping crash windows are rejected" `Quick
      test_crash_overlap_rejected;
    Alcotest.test_case "injector verdicts (partition, corrupt)" `Quick
      test_injector_verdicts;
    Alcotest.test_case "injector verdicts (crash)" `Quick test_injector_crash;
    Alcotest.test_case "default scenario is bit-for-bit invisible" `Quick
      test_default_scenario_identity;
    Alcotest.test_case "long partition splits; rendezvous recovers" `Slow
      test_partition_split_and_recovery;
    Alcotest.test_case "short partition heals within 5 rounds" `Slow
      test_partition_heals_quickly;
    Alcotest.test_case "overlapping partitions recover" `Slow
      test_overlapping_partitions_recovery;
    Alcotest.test_case "repeated partitions recover twice" `Slow
      test_repeated_partitions_recovery;
    Alcotest.test_case "partition overlapping crash recovers" `Slow
      test_partition_overlapping_crash_recovery;
    Alcotest.test_case "crash/restart passes the strict audit" `Quick
      test_crash_restart_strict_audit;
  ]
