(** A real S&F deployment over UDP on the loopback interface — the
    historical name of the select-loop engine, which now lives in
    {!Driver} so node-host processes can reuse it.  [Cluster] is [Driver]
    whole: one process owning the full id space (the default [?first] and
    [?count]).  See {!Driver} for the full documentation of every
    operation, the v2 batching/negotiation machinery, and the
    multi-process slicing parameters. *)

type t = Driver.t

val create :
  ?period:float ->
  ?now:(unit -> float) ->
  ?scenario:Sf_faults.Scenario.t ->
  ?obs:Sf_obs.Obs.t ->
  ?resilience:Sf_resil.Policy.t ->
  ?version:int ->
  ?first:int ->
  ?count:int ->
  ?serial_stride:int ->
  ?serial_offset:int ->
  base_port:int ->
  n:int ->
  config:Sf_core.Protocol.config ->
  loss_rate:float ->
  seed:int ->
  topology:Sf_core.Topology.t ->
  unit ->
  t
(** {!Driver.create}.  With the defaults ([version = 1], the whole id
    space) this binds [n] UDP sockets on ports [base_port .. base_port +
    n - 1] and behaves byte-for-byte like the pre-[Driver] cluster. *)

val node_count : t -> int
val owned_range : t -> int * int
val run : t -> duration:float -> unit
val request_stop : t -> unit
val add_channel : t -> Unix.file_descr -> (unit -> unit) -> unit
val add_periodic : t -> every:float -> (unit -> unit) -> unit
val set_partition_filter : t -> parts:int option -> unit
val shutdown : t -> unit
val views : t -> (int * Sf_core.View.t) Seq.t
val is_crashed : t -> int -> bool
val outdegree_summary : t -> Sf_stats.Summary.t
val independence_census : t -> Sf_core.Census.t
val membership_graph : t -> Sf_graph.Digraph.t
val is_weakly_connected : t -> bool
val fault_statistics : t -> Sf_faults.Injector.stats option

type statistics = Driver.statistics = {
  actions : int;
  datagrams_sent : int;
  datagrams_dropped : int;
  datagrams_received : int;
  datagrams_corrupted : int;
  datagrams_delayed : int;
  datagrams_crash_dropped : int;
  datagrams_oversized : int;
  datagrams_truncated : int;
  decode_errors : int;
  send_errors : int;
  rejoins : int;
  retunes : int;
  datagrams_emitted : int;
  messages_received : int;
  batches_sent : int;
  frames_sent : int;
  hellos_sent : int;
  hellos_received : int;
  frames_crc_rejected : int;
  datagrams_filtered : int;
  repair_attempts : int;
  recoveries : int;
}

val statistics : t -> statistics
val obs : t -> Sf_obs.Obs.t
val action_latency_quantile : t -> float -> float
