(** The flat-state spreading engine: rumor rounds layered on the sharded
    million-node runner ({!Sf_core.Runner.Sharded}).

    The engine owns no membership state.  It reads the world through its
    public surface (packed store, liveness, round-stable crash/partition
    windows) and partitions its own spread state — per-shard infection
    bitmaps, counters, Direct rings, loss-chain instances — by the
    world's own shard map, so the owner-only write discipline carries
    over and any [domains] value replays the single-domain run
    bit-for-bit ({!equal} is the oracle).  Its RNG streams split from its
    {e own} seed, so attaching a spread to a world leaves the membership
    replay bit-for-bit unchanged.

    One spreading round = one membership round of the world, then a
    bulk-synchronous spread schedule: generate (census + emit, verdicts
    judged at send time with the sending shard's RNG), barrier, deliver
    (source shards in index order, rows in generation order; push-pull
    responses judged with the responder shard's RNG), barrier, and — for
    push-pull — a response-delivery phase. *)

type t

val create :
  ?coverage_target:float ->
  ?fanout:int ->
  ?metrics:Sf_obs.Metrics.t ->
  strategy:Strategy.t ->
  source:int ->
  seed:int ->
  Sf_core.Runner.Sharded.t ->
  t
(** Attach a spread of one rumor, known initially by [source], to a
    world.  [coverage_target] defaults to 0.99, [fanout] to 2; [seed]
    derives the engine's own per-shard RNG streams.  [metrics] receives
    the [spread_coverage] gauge (a private registry when omitted).

    Raises [Invalid_argument] for [fanout < 1], a [coverage_target]
    outside (0, 1], or a [source] that is not live. *)

val run_round : t -> domains:int -> unit
(** One spreading round (advances the world one membership round first).
    [domains] is the physical parallelism; the result is identical for
    every value. *)

val run : ?max_rounds:int -> domains:int -> t -> Report.t
(** Run rounds until the coverage target is reached or [max_rounds]
    (default 200) {e total} rounds have run, then {!report}. *)

val report : t -> Report.t
(** The run's accounting so far (callable at any point). *)

val world : t -> Sf_core.Runner.Sharded.t

val rounds : t -> int
(** Spreading rounds executed so far. *)

val reached : t -> bool
(** The coverage target has been reached. *)

val infected_count : t -> int
(** Informed {e live} nodes right now (infection bits of departed slots
    are cleared as the census passes them). *)

val coverage_now : t -> float
(** Live coverage after the last completed round ([0.] before the
    first). *)

val equal : t -> t -> bool
(** Bit-for-bit engine equality: {!Sf_core.Runner.Sharded.equal} on the
    worlds plus every piece of spread state (infection bitmaps, counters,
    Direct rings, loss-chain positions, coverage history).  The
    domain-count determinism oracle for spreading runs. *)
