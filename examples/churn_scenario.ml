(* A dynamic-membership scenario: a stable system absorbs a flash crowd of
   joiners, then a correlated crash of 20% of the nodes, while the paper's
   section 6.5 quantities are tracked — how fast dead ids erode from views
   and how fast joiners become represented.

   Run with: dune exec examples/churn_scenario.exe *)

module Runner = Sf_core.Runner
module Properties = Sf_core.Properties
module Protocol = Sf_core.Protocol
module Summary = Sf_stats.Summary

let report runner label =
  let outs = Properties.outdegree_summary runner in
  let ins = Properties.indegree_summary runner in
  let census = Properties.independence_census runner in
  Fmt.pr "%-28s n=%-5d out=%.1f±%.1f in=%.1f±%.1f alpha=%.3f connected=%b@." label
    (Runner.live_count runner) (Summary.mean outs) (Summary.std outs) (Summary.mean ins)
    (Summary.std ins) census.Sf_core.Census.alpha
    (Properties.is_weakly_connected runner)

let () =
  let config = Protocol.make_config ~view_size:40 ~lower_threshold:18 in
  let n = 1000 in
  let topology = Sf_core.Topology.regular (Sf_prng.Rng.create 5) ~n ~out_degree:30 in
  let runner = Runner.create ~seed:99 ~n ~loss_rate:0.01 ~config ~topology () in
  Runner.run_rounds runner 200;
  report runner "steady state";

  (* Flash crowd: 200 joiners over 20 rounds, each bootstrapped by copying
     dL live ids from an existing view (the paper's joining rule). *)
  let joiners = ref [] in
  for _ = 1 to 20 do
    for _ = 1 to 10 do
      let bootstrap = Runner.bootstrap_from runner ~count:18 in
      joiners := Runner.add_node runner ~bootstrap :: !joiners
    done;
    Runner.run_rounds runner 1
  done;
  report runner "after flash crowd (+200)";

  (* Integration: how represented are the joiners after 2s = 80 rounds?
     Corollary 6.14 predicts at least Din/4 instances each. *)
  Runner.run_rounds runner 80;
  let represented =
    List.filter (fun id -> Runner.count_id_instances runner id > 0) !joiners
  in
  let avg_instances =
    List.fold_left (fun acc id -> acc + Runner.count_id_instances runner id) 0 !joiners
    |> fun total -> float_of_int total /. float_of_int (List.length !joiners)
  in
  Fmt.pr "joiners represented after 2s rounds: %d of %d (avg %.1f instances each)@."
    (List.length represented) (List.length !joiners) avg_instances;
  report runner "after integration";

  (* Correlated crash: 20% of the nodes disappear at once. *)
  let victims =
    Array.to_list (Runner.live_nodes runner)
    |> List.filteri (fun i _ -> i mod 5 = 0)
    |> List.map (fun node -> node.Protocol.node_id)
  in
  List.iter (fun id -> ignore (Runner.remove_node runner id)) victims;
  let dead_instances () =
    List.fold_left (fun acc id -> acc + Runner.count_id_instances runner id) 0 victims
  in
  Fmt.pr "crashed %d nodes; %d stale view entries point at them@." (List.length victims)
    (dead_instances ());
  report runner "immediately after crash";

  (* Erosion of the dead ids (Lemma 6.10): track the stale entries. *)
  let initial_stale = dead_instances () in
  let params =
    Sf_analysis.Decay.make_params ~loss:0.01 ~delta:0.01 ~lower_threshold:18 ~view_size:40
  in
  List.iter
    (fun rounds_so_far ->
      Runner.run_rounds runner 25;
      let stale = dead_instances () in
      let bound = Sf_analysis.Decay.survival_bound params ~rounds:rounds_so_far in
      Fmt.pr "  round +%3d: %5d stale entries (%.3f of initial; Lemma 6.10 bound %.3f)@."
        rounds_so_far stale
        (float_of_int stale /. float_of_int initial_stale)
        bound)
    [ 25; 50; 75; 100; 125; 150 ];
  report runner "after erosion";
  Fmt.pr "the membership healed itself: no reconfiguration, no bookkeeping.@."
