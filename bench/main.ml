(* Reproduction harness: regenerates every figure and table of the paper's
   evaluation (see DESIGN.md for the experiment index), then times the
   machinery with Bechamel micro-benchmarks.

   Every run also writes BENCH_obs.json: per-section wall times plus — when
   the OBS section ran — the observability payload (Lemma 6.6 balance,
   degree-marginal TVD, instrumentation overhead, metrics snapshot).

   Run everything:          dune exec bench/main.exe
   Run selected sections:   dune exec bench/main.exe -- F6.1 F6.3
   List sections:           dune exec bench/main.exe -- --list *)

let experiments =
  [
    ("F5.2", Exp_degrees.fig_5_2);
    ("F6.1", Exp_degrees.fig_6_1);
    ("T6.3", Exp_degrees.table_6_3);
    ("F6.3", Exp_degrees.fig_6_3);
    ("L6.6", Exp_degrees.table_6_7);
    ("F6.4", Exp_churn.fig_6_4);
    ("C6.14", Exp_churn.table_6_14);
    ("L7.6", Exp_independence.table_7_6);
    ("F7.1", Exp_independence.fig_7_1);
    ("T7.4", Exp_independence.table_7_4);
    ("L7.15", Exp_independence.table_7_15);
    ("L7.5", Exp_independence.table_7_5);
    ("B1", Exp_baselines.table_baselines);
    ("B2", Exp_baselines.table_random_walk);
    ("A1", Exp_ablations.ablation_scheduler);
    ("A2", Exp_ablations.ablation_sender_weighting);
    ("A3", Exp_ablations.ablation_duplication);
    ("A4", Exp_ablations.ablation_variants);
    ("A5", Exp_ablations.ablation_reconnection);
    ("G1", Exp_extensions.graph_quality);
    ("M1", Exp_extensions.degree_mc_mixing);
    ("B3", Exp_extensions.minwise_vs_views);
    ("B4", Exp_extensions.cyclon_age_rule);
    ("P1", Exp_extensions.partition_healing);
    ("FA1", Exp_faults.bursty_vs_iid);
    ("FA2", Exp_faults.fault_recovery);
    ("N1", Exp_robustness.nonuniform_loss);
    ("CH1", Exp_robustness.session_churn);
    ("R1", Exp_robustness.dissemination);
    ("U1", Exp_robustness.udp_crosscheck);
    ("OBS", Exp_obs.run);
    ("RES1", Exp_resilience.fig_res1);
    ("RES2", Exp_resilience.fig_res2);
    ("RSOAK", Exp_resilience.rsoak);
    ("SPEED", Speed.run);
  ]

let artifact_path = "BENCH_obs.json"

(* Run one experiment, returning its wall time (the tree's single wall
   clock lives in Sf_obs.Clock). *)
let timed f =
  let elapsed = Sf_obs.Clock.stopwatch ~clock:Sf_obs.Clock.wall in
  f ();
  elapsed ()

let write_artifact timings =
  let obs = match !Exp_obs.artifact with Some j -> j | None -> Sf_obs.Json.Null in
  let json =
    Sf_obs.Json.Obj
      [
        ( "sections",
          Sf_obs.Json.List
            (List.map
               (fun (id, seconds) ->
                 Sf_obs.Json.Obj
                   [
                     ("id", Sf_obs.Json.String id);
                     ("seconds", Sf_obs.Json.Float seconds);
                   ])
               timings) );
        ("obs", obs);
      ]
  in
  Out_channel.with_open_text artifact_path (fun oc ->
      output_string oc (Sf_obs.Json.to_string json);
      output_string oc "\n");
  Fmt.pr "@.Wrote %s (%d sections).@." artifact_path (List.length timings)

let () =
  let args =
    match Array.to_list Sys.argv with [] -> [] | _exe :: rest -> rest
  in
  match args with
  | [ "--list" ] ->
    List.iter (fun (id, _) -> Fmt.pr "%s@." id) experiments
  | [] ->
    Fmt.pr "Send & Forget reproduction harness (PODC'09 / SICOMP'10).@.";
    let timings =
      List.map
        (fun (id, f) ->
          let seconds = timed f in
          Fmt.pr "  (%s finished in %.1fs)@." id seconds;
          (id, seconds))
        experiments
    in
    write_artifact timings
  | selected ->
    let timings =
      List.filter_map
        (fun id ->
          match List.assoc_opt id experiments with
          | Some f -> Some (id, timed f)
          | None ->
            Fmt.epr "unknown experiment %S (try --list)@." id;
            None)
        selected
    in
    write_artifact timings
