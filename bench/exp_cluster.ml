(* CLUSTER: the multi-process UDP gate (ROADMAP item 4), written to
   BENCH_cluster.json.

   Two legs, both forking real node-host processes through
   Sf_net.Spawner — thousands of real sockets are available but the CI
   budget keeps this at 8 hosts x 32 nodes = 256 — under bursty
   Gilbert-Elliott loss with a crash window realized as a genuine
   kill -9 of one host plus a controller respawn:

   - [v2]: every host at wire version 2 (batched, CRC-framed datagrams);
   - [mixed]: alternating v1/v2 hosts, so the run only completes if
     per-peer hello negotiation downgrades every v2->v1 pair.

   Each leg gates on the merged post-heal state: every host completed
   the stop protocol, every node reported a structurally sound view with
   even M1-bounded outdegree, and the merged overlay is weakly
   connected.  The JSON carries the wire economics (datagrams/second,
   batch-fill ratio, per-action p50/p99 latency) next to the process
   chaos ledger (kills, respawns, heartbeat timeouts).  Exit 1 on a
   failed verdict, matching `sfg cluster`. *)

module Spawner = Sf_net.Spawner
module Json = Sf_obs.Json

let seed = 42
let hosts = 8
let per_host = 32
let rounds = 200
let period = 0.01
let view_size = 12

let scenario () =
  let n = hosts * per_host in
  let spec =
    Fmt.str "ge:0.15:6;crash@%d-%d:%d-%d" (rounds * 2 / 10) (rounds * 4 / 10)
      per_host
      (min (n - 1) ((2 * per_host) - 1))
  in
  match Sf_faults.Scenario.of_string spec with
  | Ok sc -> sc
  | Error e -> Fmt.failwith "CLUSTER scenario: %s" e

let nodehost_built () =
  let dir = Filename.dirname Sys.executable_name in
  List.exists Sys.file_exists
    [
      Filename.concat dir "sf_nodehost.exe";
      Filename.concat dir "../bin/sf_nodehost.exe";
    ]

let stat key (h : Spawner.host_outcome) =
  match List.assoc_opt key h.Spawner.stats with Some v -> v | None -> 0.

let sum key (o : Spawner.outcome) =
  List.fold_left (fun acc h -> acc +. stat key h) 0. o.Spawner.hosts

let maxs key (o : Spawner.outcome) =
  List.fold_left (fun acc h -> Float.max acc (stat key h)) 0. o.Spawner.hosts

(* The same gate `sfg cluster` applies, reduced to a list of failures. *)
let verdict (o : Spawner.outcome) =
  let n = hosts * per_host in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun m -> failures := m :: !failures) fmt in
  let byes = List.length (List.filter (fun h -> h.Spawner.bye) o.Spawner.hosts) in
  if byes <> hosts then fail "%d/%d hosts completed the stop protocol" byes hosts;
  let reported = List.length o.Spawner.merged_views in
  if reported <> n then fail "%d/%d nodes reported a final view" reported n;
  let graph = Sf_graph.Digraph.create () in
  List.iter
    (fun (id, entries) ->
      Sf_graph.Digraph.ensure_vertex graph id;
      let view = Sf_core.View.create view_size in
      List.iteri
        (fun slot e ->
          if slot < view_size then begin
            Sf_core.View.set view slot e;
            Sf_graph.Digraph.add_edge graph id e.Sf_core.View.id
          end)
        entries;
      (match Sf_check.Invariant.check_view view with
      | Some v -> fail "node %d: %a" id Sf_check.Invariant.pp_violation v
      | None -> ());
      let d = Sf_core.View.degree view in
      if d > view_size || d mod 2 <> 0 then
        fail "node %d: outdegree %d violates M1 bounds or parity" id d)
    o.Spawner.merged_views;
  if reported = n && not (Sf_graph.Digraph.is_weakly_connected graph) then
    fail "merged overlay is not weakly connected";
  if o.Spawner.kills = 0 then fail "crash window declared but nothing was killed";
  if o.Spawner.respawns = 0 then fail "crash window declared but nothing respawned";
  List.rev !failures

let leg ~codec ~base_port =
  let version_of_host =
    match codec with
    | "v1" -> fun _ -> 1
    | "v2" -> fun _ -> 2
    | _ -> fun i -> if i mod 2 = 0 then 2 else 1
  in
  let cfg =
    Spawner.make_config ~view_size ~lower_threshold:4 ~loss_rate:0.01 ~period
      ~version_of_host ~hosts ~nodes_per_host:per_host ~base_port
      ~scenario:(scenario ()) ~seed
      ~duration:(float_of_int rounds *. period)
      ()
  in
  let o = Spawner.run cfg in
  let emitted = sum "emitted" o in
  let batches = sum "batches" o in
  let frames = sum "frames" o in
  let fill =
    if batches > 0. then frames /. (batches *. float_of_int Sf_net.Codec.max_batch)
    else 0.
  in
  let failures = verdict o in
  let wall = Float.max o.Spawner.wall_seconds 1e-9 in
  Fmt.pr
    "  %-5s %d hosts x %d nodes: %.0f dgrams (%.0f/s), fill %.3f, p99 %.0fus, \
     %d kills / %d respawns -> %s@."
    codec hosts per_host emitted (emitted /. wall) fill (maxs "p99_us" o)
    o.Spawner.kills o.Spawner.respawns
    (if failures = [] then "OK" else "FAIL");
  List.iter (fun f -> Fmt.epr "  CLUSTER %s: %s@." codec f) failures;
  let json =
    Json.Obj
      [
        ("codec", Json.String codec);
        ("hosts", Json.Int hosts);
        ("nodes", Json.Int (hosts * per_host));
        ("rounds", Json.Int rounds);
        ("wall_seconds", Json.Float o.Spawner.wall_seconds);
        ("kills", Json.Int o.Spawner.kills);
        ("respawns", Json.Int o.Spawner.respawns);
        ("hb_timeouts", Json.Int o.Spawner.hb_timeouts);
        ("unexpected_deaths", Json.Int o.Spawner.unexpected_deaths);
        ("heartbeats", Json.Int o.Spawner.heartbeats);
        ("datagrams", Json.Float emitted);
        ("datagrams_per_sec", Json.Float (emitted /. wall));
        ("batches", Json.Float batches);
        ("frames", Json.Float frames);
        ("batch_fill", Json.Float fill);
        ("hellos", Json.Float (sum "hellos_sent" o));
        ("crc_rejected", Json.Float (sum "crc_rejected" o));
        ("p50_us", Json.Float (maxs "p50_us" o));
        ("p99_us", Json.Float (maxs "p99_us" o));
        ("ok", Json.Bool (failures = []));
      ]
  in
  (json, failures = [])

let run () =
  if not (nodehost_built ()) then begin
    Fmt.pr "  CLUSTER skipped: sf_nodehost.exe not built next to this binary@.";
    Json.Obj [ ("skipped", Json.Bool true) ]
  end
  else begin
    let v2, v2_ok = leg ~codec:"v2" ~base_port:45_800 in
    let mixed, mixed_ok = leg ~codec:"mixed" ~base_port:46_200 in
    if not (v2_ok && mixed_ok) then exit 1;
    Json.Obj [ ("legs", Json.List [ v2; mixed ]) ]
  end
