(* Compatibility shim for the historical [Sf_core.Dissemination] push
   epidemic, now a thin wrapper over {!Sequential}.  The Push path of the
   engine reproduces the old draw order exactly (same infected-table
   shape, one [sample_many] per informed node, one unconditional
   Bernoulli per push under [Iid]), so on a scenario-free runner this
   wrapper is byte-for-byte the old [spread] — the regression test holds
   it to that. *)

type trace = {
  rounds_to_half : int option;
  rounds_to_all : int option;
  coverage : float array;
  pushes : int;
}

let spread ?(coverage_target = 0.99) ?(max_rounds = 200) runner rng ~fanout
    ~loss_rate ~source () =
  let r =
    Sequential.run ~coverage_target ~max_rounds ~loss_rate
      ~loss_model:Sf_faults.Loss.Iid ~strategy:Strategy.Push ~fanout ~source
      runner rng
  in
  {
    rounds_to_half = r.Report.rounds_to_half;
    rounds_to_all = r.Report.rounds_to_target;
    coverage = r.Report.coverage;
    pushes = r.Report.pushes;
  }
