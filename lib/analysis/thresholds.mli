(** Protocol threshold selection (paper, section 6.3): choose dL and s from
    a target expected outdegree and a duplication/deletion budget. *)

type t = {
  d_hat : int;
  delta : float;
  dm : int;                     (** 3 * d_hat (Lemma 6.3) *)
  lower_threshold : int;        (** selected dL *)
  view_size : int;              (** selected s *)
  p_at_or_below_lower : float;  (** Pr(d <= dL) under eq. (6.1) *)
  p_above_size : float;         (** Pr(d > s) under eq. (6.1) *)
}

val select : d_hat:int -> delta:float -> t
(** Event-based reading of the deletion condition (Pr(d > s) <= delta),
    which reproduces the paper's example: [select ~d_hat:30 ~delta:0.01]
    yields dL = 18, s = 40. *)

val select_literal : d_hat:int -> delta:float -> t
(** Literal symmetric reading (Pr(d >= s) <= delta); gives s = 42 on the
    paper's example. *)

val select_lossy : d_hat:int -> delta:float -> loss:float -> t
(** Loss-aware 6.3 rule for the adaptive controller (lib/resilience):
    the duplication budget on the lower side grows to [delta + loss] —
    duplication is the only counterweight to loss (Lemma 6.6), so dL
    rises with the loss rate — while the deletion side keeps the
    event-based reading of {!select}.  [select_lossy ~loss:0.] equals
    {!select}; the result always satisfies [dL <= s - 6].  Raises
    [Invalid_argument] unless [0 <= loss < 0.5]. *)

val to_config : t -> Sf_core.Protocol.config
(** Package as a protocol configuration (validates the s >= 6 / dL <= s-6
    constraints). *)

val pp : Format.formatter -> t -> unit
