let () =
  let config = Sf_core.Protocol.make_config ~view_size:16 ~lower_threshold:6 in
  let topology = Sf_core.Topology.regular (Sf_prng.Rng.create 1) ~n:48 ~out_degree:8 in
  let c = Sf_net.Cluster.create ~base_port:19000 ~n:48 ~config ~loss_rate:0.05 ~seed:2 ~topology () in
  Sf_net.Cluster.run c ~duration:2.0;
  let s = Sf_net.Cluster.statistics c in
  let outs = Sf_net.Cluster.outdegree_summary c in
  Fmt.pr "actions=%d sent=%d dropped=%d received=%d decode_err=%d send_err=%d@."
    s.Sf_net.Cluster.actions s.Sf_net.Cluster.datagrams_sent s.Sf_net.Cluster.datagrams_dropped
    s.Sf_net.Cluster.datagrams_received s.Sf_net.Cluster.decode_errors s.Sf_net.Cluster.send_errors;
  Fmt.pr "outdeg=%.2f±%.2f alpha=%.3f connected=%b@."
    (Sf_stats.Summary.mean outs) (Sf_stats.Summary.std outs)
    (Sf_net.Cluster.independence_census c).Sf_core.Census.alpha
    (Sf_net.Cluster.is_weakly_connected c);
  Sf_net.Cluster.shutdown c
