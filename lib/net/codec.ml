(* Wire codec for S&F messages.

   An S&F message is two id instances (the sender's reinforcement id and
   the forwarded mixing id); fire-and-forget datagrams match the protocol's
   semantics exactly — no retransmission, no acknowledgement, loss allowed.

   Two wire versions share the magic byte and diverge at the version byte:

   v1 — one message per datagram (little-endian, 66 bytes):
     offset 0   magic        0xF5
     offset 1   version      1
     offset 2   reinforcement.id      int64
     offset 10  reinforcement.serial  int64
     offset 18  reinforcement.anchor  int64 (-1 encodes None)
     offset 26  reinforcement.born    int64
     offset 34  mixing.id             int64
     offset 42  mixing.serial         int64
     offset 50  mixing.anchor         int64 (-1 encodes None)
     offset 58  mixing.born           int64

   v2 — batched datagrams behind the same magic, with a kind byte:
     offset 0   magic        0xF5
     offset 1   version      2
     offset 2   kind         0 = hello, 1 = batch

   hello (7 bytes): a version advertisement used for per-peer negotiation.
   The sender declares that every UDP port in [lo, hi] on this machine
   speaks v2, so one datagram upgrades a whole node-host at the receiver:
     offset 3   lo           u16
     offset 5   hi           u16

   batch (4 + 68·count bytes): up to [max_batch] messages per datagram,
   each in its own CRC-guarded frame so one corrupted frame rejects that
   frame alone, not the datagram:
     offset 3   count        u8, in [1, max_batch]
     offset 4   frames[count], each 68 bytes:
       +0   the 64-byte v1 message payload (two entries of 32 bytes)
       +64  CRC-32 (IEEE, reflected) of the 64 payload bytes, u32

   The v1 encoder is bit-for-bit the historical one — a v2 host falling
   back to v1 for an old peer emits datagrams indistinguishable from a
   real v1 host's. *)

let magic = '\xf5'
let version = '\x01'
let message_size = 66
let payload_size = 64

(* v2 framing. *)
let kind_hello = '\x00'
let kind_batch = '\x01'
let hello_size = 7
let batch_header_size = 4
let frame_size = payload_size + 4
let max_batch = 16
let max_datagram_size = batch_header_size + (max_batch * frame_size)

(* One byte of headroom past the largest datagram either version can
   produce: POSIX recvfrom silently truncates a UDP payload to the buffer,
   so a buffer of exactly the maximum size cannot distinguish a valid
   maximal datagram from the prefix of an oversized one.  With the extra
   byte, [length > max_datagram_size] identifies foreign traffic, and a
   full-batch v2 datagram (which the historical one-message-plus-one-byte
   buffer would have truncated and dropped as oversized) fits whole. *)
let recv_buffer_size = max_datagram_size + 1

type error =
  | Too_short of int
  | Bad_magic of char
  | Unsupported_version of char
  | Oversized of int
  | Bad_kind of char
  | Bad_count of int

let pp_error ppf = function
  | Too_short n -> Fmt.pf ppf "datagram too short (%d bytes)" n
  | Bad_magic c -> Fmt.pf ppf "bad magic byte 0x%02x" (Char.code c)
  | Unsupported_version c -> Fmt.pf ppf "unsupported version %d" (Char.code c)
  | Oversized n -> Fmt.pf ppf "datagram longer than its version allows (%d bytes)" n
  | Bad_kind c -> Fmt.pf ppf "unknown v2 datagram kind %d" (Char.code c)
  | Bad_count n -> Fmt.pf ppf "batch count %d outside [1, %d]" n max_batch

(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), computed bitwise: 64
   payload bytes cost 512 shift/xor steps, well under the cost of the
   sendto the frame is about to pay, and the bitwise form keeps the module
   free of shared mutable table state. *)
let crc32 buffer ~pos ~len =
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := !crc lxor Char.code (Bytes.get buffer i);
    for _ = 0 to 7 do
      let low = !crc land 1 in
      crc := !crc lsr 1;
      if low = 1 then crc := !crc lxor 0xEDB88320
    done
  done;
  !crc lxor 0xFFFFFFFF

let write_entry buffer ~offset (e : Sf_core.View.entry) =
  Bytes.set_int64_le buffer offset (Int64.of_int e.Sf_core.View.id);
  Bytes.set_int64_le buffer (offset + 8) (Int64.of_int e.Sf_core.View.serial);
  Bytes.set_int64_le buffer (offset + 16)
    (match e.Sf_core.View.anchor with
    | None -> -1L
    | Some a -> Int64.of_int a);
  Bytes.set_int64_le buffer (offset + 24) (Int64.of_int e.Sf_core.View.born)

let read_entry buffer ~offset =
  let id = Int64.to_int (Bytes.get_int64_le buffer offset) in
  let serial = Int64.to_int (Bytes.get_int64_le buffer (offset + 8)) in
  let anchor =
    match Bytes.get_int64_le buffer (offset + 16) with
    | -1L -> None
    | a -> Some (Int64.to_int a)
  in
  let born = Int64.to_int (Bytes.get_int64_le buffer (offset + 24)) in
  { Sf_core.View.id; serial; anchor; born }

let write_payload buffer ~offset (message : Sf_core.Protocol.message) =
  write_entry buffer ~offset message.Sf_core.Protocol.reinforcement;
  write_entry buffer ~offset:(offset + 32) message.Sf_core.Protocol.mixing

let read_payload buffer ~offset =
  {
    Sf_core.Protocol.reinforcement = read_entry buffer ~offset;
    mixing = read_entry buffer ~offset:(offset + 32);
  }

let encode (message : Sf_core.Protocol.message) =
  let buffer = Bytes.create message_size in
  Bytes.set buffer 0 magic;
  Bytes.set buffer 1 version;
  write_payload buffer ~offset:2 message;
  buffer

let decode buffer ~length =
  if length < message_size then Error (Too_short length)
  else if Bytes.get buffer 0 <> magic then Error (Bad_magic (Bytes.get buffer 0))
  else if Bytes.get buffer 1 <> version then
    Error (Unsupported_version (Bytes.get buffer 1))
  else Ok (read_payload buffer ~offset:2)

(* --- v2 encoding --- *)

let frame_offset i = batch_header_size + (i * frame_size)

let encode_batch_exact messages count =
  let buffer = Bytes.create (batch_header_size + (count * frame_size)) in
  Bytes.set buffer 0 magic;
  Bytes.set buffer 1 '\x02';
  Bytes.set buffer 2 kind_batch;
  Bytes.set buffer 3 (Char.chr count);
  List.iteri
    (fun i message ->
      let offset = frame_offset i in
      write_payload buffer ~offset message;
      Bytes.set_int32_le buffer (offset + payload_size)
        (Int32.of_int (crc32 buffer ~pos:offset ~len:payload_size)))
    messages;
  buffer

(* Oversized batches split greedily into full datagrams plus a remainder:
   every emitted datagram carries at most [max_batch] frames. *)
let encode_batch messages =
  let rec chunks acc current k = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | m :: rest ->
      if k = max_batch then chunks (List.rev current :: acc) [ m ] 1 rest
      else chunks acc (m :: current) (k + 1) rest
  in
  List.map
    (fun chunk -> encode_batch_exact chunk (List.length chunk))
    (chunks [] [] 0 messages)

let corrupt_frame buffer index =
  let offset = frame_offset index in
  if offset + frame_size <= Bytes.length buffer then
    Bytes.set buffer offset
      (Char.chr (Char.code (Bytes.get buffer offset) lxor 0xff))

let encode_hello ~lo ~hi =
  if lo < 0 || hi < lo || hi > 0xFFFF then invalid_arg "Codec.encode_hello: bad range";
  let buffer = Bytes.create hello_size in
  Bytes.set buffer 0 magic;
  Bytes.set buffer 1 '\x02';
  Bytes.set buffer 2 kind_hello;
  Bytes.set_uint16_le buffer 3 lo;
  Bytes.set_uint16_le buffer 5 hi;
  buffer

(* --- Version-dispatching decoder --- *)

type batch = {
  messages : Sf_core.Protocol.message list;  (* CRC-clean frames, in order *)
  bad_crc : int;
  truncated : bool;
}

type datagram =
  | Msg_v1 of Sf_core.Protocol.message
  | Batch of batch
  | Hello of { lo : int; hi : int }

let decode_batch buffer ~length =
  let count = Char.code (Bytes.get buffer 3) in
  if count < 1 || count > max_batch then Error (Bad_count count)
  else begin
    let expected = batch_header_size + (count * frame_size) in
    if length > expected then Error (Oversized length)
    else begin
      (* A short datagram still yields every complete frame it carries;
         only the torn tail is rejected. *)
      let complete = min count ((length - batch_header_size) / frame_size) in
      let truncated = length < expected in
      let bad_crc = ref 0 in
      let messages = ref [] in
      for i = complete - 1 downto 0 do
        let offset = frame_offset i in
        let stored = Int32.to_int (Bytes.get_int32_le buffer (offset + payload_size)) land 0xFFFFFFFF in
        if stored = crc32 buffer ~pos:offset ~len:payload_size then
          messages := read_payload buffer ~offset :: !messages
        else incr bad_crc
      done;
      Ok (Batch { messages = !messages; bad_crc = !bad_crc; truncated })
    end
  end

let decode_datagram ?(max_version = 2) buffer ~length =
  if length < 2 then Error (Too_short length)
  else if Bytes.get buffer 0 <> magic then Error (Bad_magic (Bytes.get buffer 0))
  else
    match Char.code (Bytes.get buffer 1) with
    | 1 ->
      if length < message_size then Error (Too_short length)
      else if length > message_size then Error (Oversized length)
      else Ok (Msg_v1 (read_payload buffer ~offset:2))
    | 2 when max_version >= 2 -> (
      if length < 3 then Error (Too_short length)
      else
        match Bytes.get buffer 2 with
        | c when c = kind_hello ->
          if length < hello_size then Error (Too_short length)
          else if length > hello_size then Error (Oversized length)
          else
            Ok
              (Hello
                 {
                   lo = Bytes.get_uint16_le buffer 3;
                   hi = Bytes.get_uint16_le buffer 5;
                 })
        | c when c = kind_batch ->
          if length < batch_header_size then Error (Too_short length)
          else decode_batch buffer ~length
        | c -> Error (Bad_kind c))
    | _ -> Error (Unsupported_version (Bytes.get buffer 1))
