(* Peer-sampling service facade: the application-facing use of local views
   (paper, section 1) — applications continuously draw node-id samples for
   data dissemination, aggregation, or cache placement.  A sample is a
   uniformly random non-empty entry of the caller's current view; because
   S&F views are uniform and evolving, repeated samples approach fresh
   i.i.d. uniform ids (Properties M3-M5). *)

(* One random peer id from the node's view, excluding (by default) the node
   itself: self-samples are useless to applications. *)
let sample ?(allow_self = false) runner rng ~node_id =
  match Runner.find_node runner node_id with
  | None -> None
  | Some node ->
    let candidates =
      View.fold
        (fun acc e ->
          if allow_self || e.View.id <> node_id then e.View.id :: acc else acc)
        [] node.Protocol.view
    in
    (match candidates with
    | [] -> None
    | _ ->
      let arr = Array.of_list candidates in
      Some (Sf_prng.Rng.choose rng arr))

(* [k] samples with replacement. *)
let sample_many ?allow_self runner rng ~node_id ~k =
  let rec go k acc =
    if k = 0 then acc
    else
      match sample ?allow_self runner rng ~node_id with
      | None -> acc
      | Some id -> go (k - 1) (id :: acc)
  in
  go k []

(* Samples interleaved with protocol progress: draw one sample per node per
   [rounds_between] rounds, accumulating per-id counts over the whole
   system.  This is the workload of statistics-gathering applications, and
   the distribution of the counts measures sampling uniformity end-to-end. *)
let sampling_census runner rng ~samples_per_node ~rounds_between =
  let counts = Hashtbl.create 1024 in
  for _ = 1 to samples_per_node do
    Runner.run_rounds runner rounds_between;
    Array.iter
      (fun node ->
        match sample runner rng ~node_id:node.Protocol.node_id with
        | None -> ()
        | Some id ->
          Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
      (Runner.live_nodes runner)
  done;
  counts
