(* Tests for the random-walk sampling baseline (paper, section 3.1). *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Random_walk = Sf_core.Random_walk

let config = Protocol.make_config ~view_size:12 ~lower_threshold:4

let make_system ?(seed = 88) ?(n = 100) () =
  let rng = Sf_prng.Rng.create (seed + 9) in
  let topology = Topology.regular rng ~n ~out_degree:4 in
  let r = Runner.create ~seed ~n ~loss_rate:0. ~config ~topology () in
  Runner.run_rounds r 50;
  r

let test_walk_completes_without_loss () =
  let r = make_system () in
  let rng = Sf_prng.Rng.create 1 in
  for _ = 1 to 100 do
    match Random_walk.walk r rng ~start:0 ~length:8 ~loss_rate:0. with
    | Random_walk.Completed endpoint ->
      Alcotest.(check bool) "endpoint live" true (Runner.find_node r endpoint <> None)
    | Random_walk.Lost_at_hop _ -> Alcotest.fail "no loss configured"
    | Random_walk.Dead_end _ -> Alcotest.fail "views are populated"
  done

let test_walk_length_zero () =
  let r = make_system () in
  let rng = Sf_prng.Rng.create 2 in
  (match Random_walk.walk r rng ~start:5 ~length:0 ~loss_rate:0. with
  | Random_walk.Completed e -> Alcotest.(check int) "stays put" 5 e
  | _ -> Alcotest.fail "zero-length walk completes trivially")

let test_walk_from_dead_node () =
  let r = make_system () in
  let victim = (Runner.random_live_node r).Protocol.node_id in
  ignore (Runner.remove_node r victim);
  let rng = Sf_prng.Rng.create 3 in
  (match Random_walk.walk r rng ~start:victim ~length:5 ~loss_rate:0. with
  | Random_walk.Dead_end 0 -> ()
  | _ -> Alcotest.fail "walk from a departed node dead-ends immediately")

let test_success_rate_matches_theory () =
  (* The paper's objection: success probability decays exponentially with
     walk length under loss. *)
  let r = make_system ~n:200 () in
  let rng = Sf_prng.Rng.create 4 in
  List.iter
    (fun length ->
      let stats =
        Random_walk.sample_statistics r rng ~attempts:4000 ~length ~loss_rate:0.1
      in
      let expected = Random_walk.success_probability ~length ~loss_rate:0.1 in
      Alcotest.(check bool)
        (Printf.sprintf "len %d: %.3f vs %.3f" length stats.Random_walk.success_rate expected)
        true
        (Float.abs (stats.Random_walk.success_rate -. expected) < 0.03))
    [ 1; 5; 15 ]

let test_statistics_accounting () =
  let r = make_system () in
  let rng = Sf_prng.Rng.create 5 in
  let stats = Random_walk.sample_statistics r rng ~attempts:500 ~length:10 ~loss_rate:0.3 in
  Alcotest.(check int) "outcomes partition attempts" 500
    (stats.Random_walk.completed + stats.Random_walk.lost + stats.Random_walk.dead_ends);
  let tallied = Hashtbl.fold (fun _ c acc -> acc + c) stats.Random_walk.endpoint_counts 0 in
  Alcotest.(check int) "endpoint counts match completions" stats.Random_walk.completed tallied

let test_exponential_decay_ordering () =
  let r = make_system ~n:150 () in
  let rng = Sf_prng.Rng.create 6 in
  let rate length =
    (Random_walk.sample_statistics r rng ~attempts:3000 ~length ~loss_rate:0.1)
      .Random_walk.success_rate
  in
  let r2 = rate 2 and r10 = rate 10 and r30 = rate 30 in
  Alcotest.(check bool)
    (Printf.sprintf "%.3f > %.3f > %.3f" r2 r10 r30)
    true
    (r2 > r10 && r10 > r30)

let suite =
  [
    Alcotest.test_case "walk completes" `Quick test_walk_completes_without_loss;
    Alcotest.test_case "zero-length walk" `Quick test_walk_length_zero;
    Alcotest.test_case "walk from dead node" `Quick test_walk_from_dead_node;
    Alcotest.test_case "success rate matches theory" `Quick test_success_rate_matches_theory;
    Alcotest.test_case "statistics accounting" `Quick test_statistics_accounting;
    Alcotest.test_case "exponential decay" `Quick test_exponential_decay_ordering;
  ]
