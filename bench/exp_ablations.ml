(* Ablations of the design decisions called out in DESIGN.md: the
   sequential-action scheduler vs timed execution, the size-biased sender
   weighting inside the degree MC, the duplication mechanism itself, and
   the section 5 optimization variants. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Properties = Sf_core.Properties
module Variants = Sf_core.Variants
module Census = Sf_core.Census
module Degree_mc = Sf_analysis.Degree_mc
module Summary = Sf_stats.Summary
module Pmf = Sf_stats.Pmf

let config = Protocol.make_config ~view_size:40 ~lower_threshold:18

let make_system ~seed ~n ~loss =
  let rng = Sf_prng.Rng.create (seed + 1) in
  let topology = Topology.regular rng ~n ~out_degree:30 in
  Runner.create ~seed ~n ~loss_rate:loss ~config ~topology ()

(* The analysis assumes a central sequential scheduler; real deployments run
   concurrent timers over a delaying network. Compare the degree statistics
   under both. *)
let ablation_scheduler () =
  Output.section "A1" "Ablation: sequential-action model vs timed execution";
  Fmt.pr
    "n=800, loss=2%%.  Sequential: 500 rounds of the central scheduler.@\n\
     Timed: Poisson(1) initiations per node over the latency-ful network@\n\
     for 500 time units (same expected action count), messages in flight@\n\
     and concurrent actions included.@.";
  let loss = 0.02 in
  let seq = make_system ~seed:31 ~n:800 ~loss in
  Runner.run_rounds seq 500;
  let timed = make_system ~seed:32 ~n:800 ~loss in
  Runner.start_timed timed (Runner.Poisson 1.0);
  Runner.run_until timed 500.;
  let line name r =
    let o = Properties.outdegree_summary r and i = Properties.indegree_summary r in
    let census = Properties.independence_census r in
    [
      name;
      Fmt.str "%.2f±%.2f" (Summary.mean o) (Summary.std o);
      Fmt.str "%.2f±%.2f" (Summary.mean i) (Summary.std i);
      Output.f3 census.Census.alpha;
      string_of_bool (Properties.is_weakly_connected r);
    ]
  in
  Output.table
    [ "scheduler"; "outdegree"; "indegree"; "alpha"; "connected" ]
    [ line "sequential (analysis model)" seq; line "timed (practical model)" timed ];
  let seq_mean = Summary.mean (Properties.indegree_summary seq) in
  let timed_mean = Summary.mean (Properties.indegree_summary timed) in
  Output.check
    (Fmt.str "degree behaviour transfers across schedulers (means %.1f vs %.1f)"
       seq_mean timed_mean)
    (Float.abs (seq_mean -. timed_mean) < 2.)

(* The degree MC weights senders by outdegree (a random in-edge lives at a
   high-outdegree node); the naive model does not. Compare both against the
   simulation. *)
let ablation_sender_weighting () =
  Output.section "A2" "Ablation: size-biased vs uniform sender weighting in the degree MC";
  Fmt.pr "dL=18, s=40, loss=5%%, against a 1000-node simulation (600 rounds).@.";
  let loss = 0.05 in
  let weighted =
    Degree_mc.solve (Degree_mc.make_params ~view_size:40 ~lower_threshold:18 ~loss ())
  in
  let uniform =
    Degree_mc.solve
      (Degree_mc.make_params ~weighting:Degree_mc.Uniform ~view_size:40 ~lower_threshold:18
         ~loss ())
  in
  let sim = make_system ~seed:41 ~n:1000 ~loss in
  Runner.run_rounds sim 600;
  let sim_in = Properties.indegree_summary sim in
  let sim_in_pmf = Sf_stats.Pmf.of_samples (Properties.indegree_samples sim) in
  let line name (mc : Degree_mc.result) =
    [
      name;
      Fmt.str "%.2f±%.2f" (Pmf.mean mc.Degree_mc.indegree) (Pmf.std mc.Degree_mc.indegree);
      Output.f4 mc.Degree_mc.duplication_probability;
      Output.f4 (Pmf.tv_distance mc.Degree_mc.indegree sim_in_pmf);
    ]
  in
  Output.table
    [ "model"; "indegree"; "dup prob"; "TVD vs simulation" ]
    [
      line "size-biased (paper, ours)" weighted;
      line "uniform (naive)" uniform;
      [
        "simulation";
        Fmt.str "%.2f±%.2f" (Summary.mean sim_in) (Summary.std sim_in);
        "-";
        "0.0000";
      ];
    ];
  let tvd_w = Pmf.tv_distance weighted.Degree_mc.indegree sim_in_pmf in
  let tvd_u = Pmf.tv_distance uniform.Degree_mc.indegree sim_in_pmf in
  Output.check
    (Fmt.str "size-biased weighting fits the simulation at least as well (%.3f vs %.3f)"
       tvd_w tvd_u)
    (tvd_w <= tvd_u +. 0.01)

(* Why duplication exists: disable it (dL = 0) under loss and watch the
   edges drain, exactly the scenario of section 5. *)
let ablation_duplication () =
  Output.section "A3" "Ablation: duplication disabled (dL=0) under loss";
  Fmt.pr
    "n=500, s=40, loss=5%%.  With dL=0 S&F never duplicates, so every lost@\n\
     message permanently destroys two entries (the shuffle failure mode);@\n\
     with dL=18 duplication compensates.@.";
  let n = 500 and loss = 0.05 in
  let topology seed = Topology.regular (Sf_prng.Rng.create seed) ~n ~out_degree:20 in
  let run lower_threshold seed =
    let config = Protocol.make_config ~view_size:40 ~lower_threshold in
    let r = Runner.create ~seed ~n ~loss_rate:loss ~config ~topology:(topology seed) () in
    let edges t = Sf_graph.Digraph.edge_count (Runner.membership_graph t) in
    let initial = edges r in
    (* The drain is slow once degrees shrink (the send rate falls with
       d^2), so the horizon must be long. *)
    let checkpoints =
      List.map
        (fun chunk ->
          Runner.run_rounds r chunk;
          edges r)
        [ 200; 200; 400; 400 ]
    in
    (initial, Array.of_list checkpoints, Properties.is_weakly_connected r)
  in
  let i0, with_dup, conn_dup = run 18 51 in
  let j0, without_dup, conn_nodup = run 0 52 in
  Output.table
    [ "rounds"; "edges (dL=18)"; "edges (dL=0)" ]
    ([ [ "0"; Output.i i0; Output.i j0 ] ]
    @ List.mapi
        (fun idx rounds ->
          [
            Output.i rounds;
            Output.i with_dup.(idx);
            Output.i without_dup.(idx);
          ])
        [ 200; 400; 800; 1200 ]);
  Fmt.pr "  connectivity after 1200 rounds: dL=18 %b, dL=0 %b@." conn_dup conn_nodup;
  Output.check "duplication preserves the edge population" (with_dup.(3) > i0 / 2);
  Output.check "without duplication the edges drain away" (without_dup.(3) < j0 / 2)

(* The section 5 joining/reconnection rule under severe churn: without it,
   nodes whose neighborhoods die out isolate permanently; with it, probing
   previously seen ids (falling back to the bootstrap service) keeps
   everyone attached. *)
let ablation_reconnection () =
  Output.section "A5" "Ablation: the section 5 reconnection rule under severe churn";
  Fmt.pr
    "n=300, s=12, dL=4, loss=2%%; 120 rounds of churn replacing ~80%% of the@\n\
     population (2 joins + 2 leaves per round).  Without reconnection some@\n\
     nodes end up holding only dead ids with no surviving instance of their@\n\
     own id; the reconnection rule (probe previously seen ids, fall back to@\n\
     re-bootstrap) eliminates them.@.";
  let run ~recover seed =
    let config = Protocol.make_config ~view_size:12 ~lower_threshold:4 in
    let topology = Topology.regular (Sf_prng.Rng.create (seed + 3)) ~n:300 ~out_degree:4 in
    let r = Runner.create ~seed ~n:300 ~loss_rate:0.02 ~config ~topology () in
    Runner.run_rounds r 100;
    let reconnections =
      Sf_core.Churn.run_with_churn ~recover r ~rounds:120 ~joins:2 ~leaves:2
    in
    Runner.run_rounds r 10;
    (List.length (Runner.isolated_nodes r), reconnections,
     Properties.is_weakly_connected r)
  in
  let iso_off, _, conn_off = run ~recover:false 121 in
  let iso_on, reconnections, conn_on = run ~recover:true 121 in
  Output.table
    [ "recovery"; "isolated nodes"; "reconnection attempts"; "connected" ]
    [
      [ "off"; Output.i iso_off; "0"; string_of_bool conn_off ];
      [ "on"; Output.i iso_on; Output.i reconnections; string_of_bool conn_on ];
    ];
  Output.check "severe churn isolates nodes without recovery (the caveat is real)"
    (iso_off > 0);
  Output.check "the reconnection rule eliminates isolation" (iso_on = 0 && conn_on)

(* The section 5 optimization variants. *)
let ablation_variants () =
  Output.section "A4" "Ablation: section 5 optimization variants";
  Fmt.pr
    "n=800, s=40, dL=18, loss=5%%, 400 rounds.  Standard S&F vs the three@\n\
     optimizations the paper sketches and defers.@.";
  let n = 800 and loss = 0.05 in
  let topology seed = Topology.regular (Sf_prng.Rng.create seed) ~n ~out_degree:20 in
  let run name options seed =
    let v =
      Variants.create ~seed ~n ~view_size:40 ~lower_threshold:18 ~loss_rate:loss ~options
        ~topology:(topology seed)
    in
    Variants.run_rounds v 400;
    let o = Variants.outdegree_summary v in
    let census = Variants.independence_census v in
    let k = Variants.counters v in
    ( name,
      [
        name;
        Fmt.str "%.2f±%.2f" (Summary.mean o) (Summary.std o);
        Output.f3 census.Census.alpha;
        Output.i k.Variants.duplications;
        Output.i k.Variants.undeletions;
        Output.i k.Variants.deletions;
        string_of_bool (Variants.is_weakly_connected v);
      ],
      census.Census.alpha )
  in
  let results =
    [
      run "standard" Variants.standard 61;
      run "mark-and-undelete" { Variants.standard with mark_and_undelete = true } 62;
      run "replace-when-full" { Variants.standard with replace_when_full = true } 63;
      run "batch=3" { Variants.standard with batch = 3 } 64;
    ]
  in
  Output.table
    [ "variant"; "outdegree"; "alpha"; "dups"; "undeletes"; "deletes"; "connected" ]
    (List.map (fun (_, row, _) -> row) results);
  let alpha name = let _, _, a = List.find (fun (n', _, _) -> n' = name) results in a in
  Output.check "mark-and-undelete improves independence over standard"
    (alpha "mark-and-undelete" > alpha "standard")
