(* Uniformity and independence experiments: Lemma 7.6 (table 7.6), the
   dependence MC and alpha bound of Lemma 7.9 (fig 7.1), the connectivity
   rule of section 7.4 (table 7.4), the temporal-independence bound of
   Lemma 7.15 (table 7.15), and the exact global MC checks of Lemmas
   7.1/7.5 (table L7.5). *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Properties = Sf_core.Properties
module Census = Sf_core.Census
module View = Sf_core.View
module Dependence = Sf_analysis.Dependence
module Temporal = Sf_analysis.Temporal
module Connectivity = Sf_analysis.Connectivity
module Global_mc = Sf_analysis.Global_mc
module Decay = Sf_analysis.Decay

let config = Protocol.make_config ~view_size:40 ~lower_threshold:18

let make_system ~seed ~n ~loss =
  let rng = Sf_prng.Rng.create (seed + 1) in
  let topology = Topology.regular rng ~n ~out_degree:30 in
  Runner.create ~seed ~n ~loss_rate:loss ~config ~topology ()

(* --- Lemma 7.6: uniformity --- *)

let table_7_6 () =
  Output.section "L7.6" "Uniformity of view entries (Property M3, Lemma 7.6)";
  Fmt.pr
    "Appearance counts of every id across all views, aggregated over 20@\n\
     independent 400-node systems (one converged snapshot each), tested@\n\
     against uniformity by chi-square.@.";
  let runs = 20 and n = 400 in
  let counts = Array.make n 0. in
  for seed = 1 to runs do
    let r = make_system ~seed:(7000 + seed) ~n ~loss:0.01 in
    Runner.run_rounds r 250;
    Array.iter
      (fun node ->
        View.iter
          (fun _ e ->
            if e.View.id <> node.Protocol.node_id && e.View.id < n then
              counts.(e.View.id) <- counts.(e.View.id) +. 1.)
          node.Protocol.view)
      (Runner.live_nodes r)
  done;
  let result = Sf_stats.Hypothesis.chi_square_uniform counts in
  let summary = Sf_stats.Summary.of_array counts in
  Output.table
    [ "metric"; "value" ]
    [
      [ "ids (cells)"; Output.i n ];
      [ "mean count per id"; Output.f2 (Sf_stats.Summary.mean summary) ];
      [ "count std / mean"; Output.f4 (Sf_stats.Summary.std summary /. Sf_stats.Summary.mean summary) ];
      [ "chi-square statistic"; Output.f2 result.Sf_stats.Hypothesis.statistic ];
      [ "degrees of freedom"; Output.i result.Sf_stats.Hypothesis.degrees_of_freedom ];
      [ "p-value"; Output.f4 result.Sf_stats.Hypothesis.p_value ];
    ];
  Output.check "uniformity not rejected (p > 0.001)"
    (result.Sf_stats.Hypothesis.p_value > 0.001)

(* --- Figure 7.1 / Lemma 7.9: spatial independence --- *)

let fig_7_1 () =
  Output.section "F7.1/L7.9" "Spatial independence: dependence MC and alpha bound";
  Fmt.pr
    "Analytic: the two-state dependence MC of Figure 7.1 and the bound@\n\
     alpha >= 1 - 2(loss+delta).  Measured: the conservative dependence@\n\
     census (self-edges + anchored instances + within-view duplicates) on@\n\
     1000-node systems after 600 rounds; delta is the measured duplication@\n\
     rate at each loss.@.";
  let rows =
    List.map
      (fun loss ->
        let r = make_system ~seed:(9000 + int_of_float (loss *. 1000.)) ~n:1000 ~loss in
        Runner.run_rounds r 300;
        let base = Runner.world_counters r in
        Runner.run_rounds r 300;
        let delta = (Runner.rates_since r base).Runner.duplication -. loss in
        let delta = Float.max 0. delta in
        let census = Properties.independence_census r in
        let bound = Dependence.alpha_lower_bound ~loss ~delta in
        let exact = 1. -. Dependence.stationary_dependent_fraction ~loss ~delta in
        (loss, delta, bound, exact, census))
      [ 0.; 0.01; 0.05; 0.1 ]
  in
  Output.table
    [ "loss"; "delta(meas)"; "alpha bound"; "alpha MC"; "alpha measured"; "self"; "anchored"; "parallel" ]
    (List.map
       (fun (loss, delta, bound, exact, census) ->
         [
           Output.f2 loss;
           Output.f4 delta;
           Output.f4 bound;
           Output.f4 exact;
           Output.f4 census.Census.alpha;
           Output.i census.Census.self_edges;
           Output.i census.Census.anchored;
           Output.i census.Census.parallel_surplus;
         ])
       rows);
  List.iter
    (fun (loss, _, bound, _, census) ->
      Output.check
        (Fmt.str "loss %.2f: measured alpha %.3f respects the bound %.3f (margin 0.03)"
           loss census.Census.alpha bound)
        (census.Census.alpha >= bound -. 0.03))
    rows;
  let alphas = List.map (fun (_, _, _, _, c) -> c.Census.alpha) rows in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  Output.check "dependence grows moderately with loss (alpha decreasing)" (decreasing alphas)

(* --- Section 7.4 connectivity rule --- *)

let table_7_4 () =
  Output.section "T7.4" "Connectivity rule: minimal dL (section 7.4)";
  Fmt.pr
    "Minimal even dL such that Pr[Binomial(dL, alpha) <= 2] <= eps, with@\n\
     alpha = 1 - 2(loss+delta).  Paper example: loss = delta = 1%%,@\n\
     eps = 1e-30 -> dL = 26.@.";
  let rows =
    List.concat_map
      (fun (loss, delta) ->
        List.map
          (fun epsilon ->
            let alpha = Dependence.alpha_lower_bound ~loss ~delta in
            let dl =
              match Connectivity.minimal_lower_threshold ~alpha ~epsilon () with
              | Some d -> Output.i d
              | None -> "-"
            in
            [ Output.f2 loss; Output.f2 delta; Fmt.str "%.0e" epsilon; Output.f3 alpha; dl ])
          [ 1e-10; 1e-20; 1e-30 ])
      [ (0.01, 0.01); (0.05, 0.01); (0.1, 0.02) ]
  in
  Output.table [ "loss"; "delta"; "eps"; "alpha"; "min dL" ] rows;
  Output.check "paper example reproduced: dL = 26"
    (Connectivity.minimal_lower_threshold ~alpha:0.96 ~epsilon:1e-30 () = Some 26)

(* --- Lemma 7.15: temporal independence --- *)

let table_7_15 () =
  Output.section "L7.15" "Temporal independence (Property M5, Lemma 7.15)";
  Fmt.pr
    "Analytic: tau_eps and the O(s log n) actions-per-node scaling.@\n\
     Empirical: fraction of view instances surviving from a reference@\n\
     snapshot, against the geometric refresh prediction (Lemma 6.9 rate).@.";
  Output.subsection "tau_eps bound (dE=27, alpha=0.96, eps=0.01)";
  Output.table
    [ "n"; "s"; "tau_eps (transformations)"; "actions/node"; "s ln n" ]
    (List.map
       (fun n ->
         let s = 40 in
         let p = Temporal.make_params ~n ~view_size:s ~expected_outdegree:27. ~alpha:0.96 in
         [
           Output.i n;
           Output.i s;
           Fmt.str "%.3e" (Temporal.tau_epsilon p ~epsilon:0.01);
           Output.f2 (Temporal.actions_per_node p ~epsilon:0.01);
           Output.f2 (Temporal.headline_scaling p);
         ])
       [ 1_000; 10_000; 100_000; 1_000_000 ]);
  Output.subsection "measured view-overlap decay (n=1000, loss=0.01)";
  let r = make_system ~seed:1234 ~n:1000 ~loss:0.01 in
  Runner.run_rounds r 300;
  let points = Properties.overlap_decay r ~blocks:10 ~rounds_per_block:10 in
  let params = Decay.make_params ~loss:0.01 ~delta:0.01 ~lower_threshold:18 ~view_size:40 in
  let survival = Decay.per_round_survival params in
  Output.table
    [ "rounds"; "measured overlap"; "geometric prediction" ]
    (List.map
       (fun (rounds, fraction) ->
         [
           Output.i rounds;
           Output.f3 fraction;
           Output.f3 (survival ** float_of_int rounds);
         ])
       points);
  let final_rounds, final =
    match List.rev points with p :: _ -> p | [] -> (0, 1.)
  in
  Output.check
    (Fmt.str "dependence on the starting state decays (%.3f left after %d rounds)"
       final final_rounds)
    (final < 0.5);
  (* Scaling headline: per-node actions grow like s log n. *)
  let per_node n =
    Temporal.actions_per_node
      (Temporal.make_params ~n ~view_size:40 ~expected_outdegree:27. ~alpha:0.96)
      ~epsilon:0.01
  in
  let ratio = per_node 1_000_000 /. per_node 1_000 in
  Output.check
    (Fmt.str "actions/node scales like log n (ratio %.2f for n x1000)" ratio)
    (ratio > 1.8 && ratio < 2.2)

(* --- Lemmas 7.1/7.5: exact global MC --- *)

let table_7_5 () =
  Output.section "L7.5" "Exact global Markov chain on tiny systems (section 7)";
  Fmt.pr
    "The full chain on membership graphs, built exactly for n=3.  Checks:@\n\
     ergodicity (Lemma 7.1/A.2), uniformity over instance-labeled states@\n\
     with no loss (Lemma 7.5), and exact uniformity of edge probabilities@\n\
     (Lemma 7.6).@.";
  let no_loss = { Global_mc.n = 3; view_size = 6; lower_threshold = 0; loss = 0. } in
  let triangle = [ [ 1; 2 ]; [ 0; 2 ]; [ 0; 1 ] ] in
  let r = Global_mc.explore no_loss ~initial:triangle in
  let lossy = { Global_mc.n = 3; view_size = 4; lower_threshold = 2; loss = 0.1 } in
  let rl = Global_mc.explore lossy ~initial:triangle in
  Output.table
    [ "chain"; "states"; "ergodic"; "labeled max/min"; "edge max/min"; "mean entries" ]
    [
      [
        "no loss (s=6,dL=0)";
        Output.i (Array.length r.Global_mc.states);
        string_of_bool r.Global_mc.is_ergodic;
        Output.f4 (Global_mc.labeled_uniformity_ratio r);
        Output.f4 (Global_mc.edge_probability_spread r);
        Output.f3 r.Global_mc.mean_entries;
      ];
      [
        "loss 10% (s=4,dL=2)";
        Output.i (Array.length rl.Global_mc.states);
        string_of_bool rl.Global_mc.is_ergodic;
        "-";
        Output.f4 (Global_mc.edge_probability_spread rl);
        Output.f3 rl.Global_mc.mean_entries;
      ];
    ];
  Output.check "Lemma 7.1: chains strongly connected"
    (r.Global_mc.is_ergodic && rl.Global_mc.is_ergodic);
  Output.check "Lemma 7.5 (exact, instance-labeled): stationary uniform"
    (Float.abs (Global_mc.labeled_uniformity_ratio r -. 1.) < 1e-6);
  Output.check "Lemma 7.6: edge probabilities exactly uniform (both chains)"
    (Float.abs (Global_mc.edge_probability_spread r -. 1.) < 1e-6
    && Float.abs (Global_mc.edge_probability_spread rl -. 1.) < 1e-5)
