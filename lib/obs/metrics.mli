(** Metrics registry: named counters, gauges and log-bucketed histograms.

    All metrics are allocated once at registration (get-or-create by
    name); the update operations are O(1) field writes or a single array
    increment, so the hot gossip path pays the same cost as the ad-hoc
    mutable counters this registry replaced.

    Histograms are HDR-style: base-2 octaves split into
    {!sub_buckets_per_octave} linear sub-buckets each.  Bucket boundaries
    are dyadic rationals so the value->bucket mapping is exact at the
    boundaries, the maximal relative quantile error is
    [1 / sub_buckets_per_octave], and quantiles are clamped to the exact
    observed [min, max] (a single-valued histogram round-trips exactly).

    Exports ({!to_prometheus}, {!to_csv}, {!to_json}) walk the registry in
    name order: snapshots of equal state are byte-identical. *)

type t
(** A registry. *)

val create : unit -> t

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create.  Names must match [[A-Za-z0-9_:]+]; registering the
    same name as a different metric kind raises [Invalid_argument]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int
val counter_name : counter -> string
val find_counter : t -> string -> counter option

(** {2 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val level : gauge -> float
val gauge_name : gauge -> string
val find_gauge : t -> string -> gauge option

(** {2 Histograms} *)

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit
val observations : histogram -> int
val total : histogram -> float
val minimum : histogram -> float  (** [nan] when empty *)

val maximum : histogram -> float  (** [nan] when empty *)

val mean : histogram -> float  (** [nan] when empty *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0, 1]: the lower bound of the first bucket
    whose cumulative count reaches [ceil (q * count)], clamped to the
    observed [min, max].  [nan] when empty. *)

val histogram_name : histogram -> string
val find_histogram : t -> string -> histogram option

(** {2 Bucketing scheme} (exposed for boundary-exactness tests) *)

val sub_buckets_per_octave : int
val bucket_count : int

val bucket_of_value : float -> int
(** Zero, negatives, NaN and underflow map to bucket 0; overflow clamps to
    the last bucket. *)

val bucket_lower : int -> float
(** Inclusive lower bound of a bucket (0. for bucket 0). *)

val bucket_upper : int -> float
(** Exclusive upper bound (infinity for the final bucket). *)

(** {2 Exporters} *)

val to_prometheus : t -> string
(** Prometheus text exposition format, metrics in name order. *)

val to_csv : t -> string
(** [kind,name,field,value] rows, metrics in name order. *)

val to_json : t -> Json.t
(** One field per metric, in name order; histograms export
    count/sum/min/max and p50/p90/p99. *)
