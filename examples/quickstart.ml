(* Quickstart: build a 1000-node Send & Forget system, pick its parameters
   with the paper's threshold rule, run it over a lossy network, and inspect
   the membership properties.

   Run with: dune exec examples/quickstart.exe *)

module Runner = Sf_core.Runner
module Properties = Sf_core.Properties
module Summary = Sf_stats.Summary

let () =
  (* 1. Choose protocol parameters for a target expected outdegree of 30
        with a 1% duplication/deletion budget (paper, section 6.3). *)
  let thresholds = Sf_analysis.Thresholds.select ~d_hat:30 ~delta:0.01 in
  let config = Sf_analysis.Thresholds.to_config thresholds in
  Fmt.pr "parameters: %a@." Sf_analysis.Thresholds.pp thresholds;

  (* 2. Build the system: 1000 nodes, 1%% message loss, views bootstrapped
        from a random regular topology. *)
  let n = 1000 in
  let topology =
    Sf_core.Topology.regular (Sf_prng.Rng.create 1) ~n ~out_degree:thresholds.d_hat
  in
  let runner = Runner.create ~seed:42 ~n ~loss_rate:0.01 ~config ~topology () in

  (* 3. Run 300 rounds (each node initiates ~300 actions). *)
  Runner.run_rounds runner 300;

  (* 4. Inspect the membership service's properties. *)
  let outs = Properties.outdegree_summary runner in
  let ins = Properties.indegree_summary runner in
  Fmt.pr "outdegree: %.1f +- %.1f@." (Summary.mean outs) (Summary.std outs);
  Fmt.pr "indegree:  %.1f +- %.1f  (load balance, Property M2)@." (Summary.mean ins)
    (Summary.std ins);
  let census = Properties.independence_census runner in
  Fmt.pr "independent entries: %.1f%%  (spatial independence, Property M4)@."
    (100. *. census.Sf_core.Census.alpha);
  Fmt.pr "weakly connected: %b@." (Properties.is_weakly_connected runner);

  (* 5. Applications draw peer samples from their local views. *)
  let rng = Sf_prng.Rng.create 7 in
  let samples = Sf_core.Sampling.sample_many runner rng ~node_id:0 ~k:5 in
  Fmt.pr "five peer samples drawn by node 0: %a@." Fmt.(list ~sep:sp int) samples
