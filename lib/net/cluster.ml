(* The historical name of the single-process deployment: a {!Driver}
   owning the whole id space.  All engine code lives in driver.ml; this
   alias keeps every existing caller (tests, sfg gates, benches) on the
   name they were written against. *)

include Driver
