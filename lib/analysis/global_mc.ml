(* The global Markov chain on membership graphs (paper, section 7.1),
   constructed exactly for small systems.

   States are global view assignments: node i's view is a sorted multiset
   of ids (slot positions are irrelevant to the dynamics because slots are
   selected uniformly).  Transitions enumerate every S&F transformation:
   the initiator, the ordered pair of ids drawn (weighted by multiplicity),
   the duplication decision, the loss branch, and the receiver's
   accept/delete step.  Following section 7.1, transitions into partitioned
   membership graphs are redirected to self-loops.

   On this exact chain the paper's structural results can be checked
   mechanically:
   - Lemma 7.1 / A.2: the reachable chain is strongly connected (ergodic).
   - Lemma 7.5: with no loss and dL = 0 the stationary distribution is
     uniform over the reachable sum-degree class.
   - Lemma 7.6: in the steady state every id v <> u is equally likely to
     appear in u's view.
   State counts grow brutally with n and s; n = 3, s = 6 is comfortable. *)

type params = {
  n : int;
  view_size : int;
  lower_threshold : int;
  loss : float;
}

(* A state: per node, the sorted list of ids in its view. *)
type state = int list list

(* --- Multiset operations on sorted id lists --- *)

let rec remove_one id = function
  | [] -> invalid_arg "Global_mc.remove_one: id not present"
  | x :: rest -> if x = id then rest else x :: remove_one id rest

let rec insert_sorted id = function
  | [] -> [ id ]
  | x :: rest as l -> if id <= x then id :: l else x :: insert_sorted id rest

let count_id id view = List.length (List.filter (( = ) id) view)

(* --- Connectivity of a state --- *)

let is_weakly_connected_state ~n state =
  let g = Sf_graph.Digraph.create () in
  for u = 0 to n - 1 do
    Sf_graph.Digraph.ensure_vertex g u
  done;
  List.iteri (fun u view -> List.iter (fun v -> Sf_graph.Digraph.add_edge g u v) view) state;
  Sf_graph.Digraph.is_weakly_connected g

(* --- Transition enumeration --- *)

(* All (successor, probability) pairs from [state]; probabilities sum to 1
   (noop selections contribute an explicit self-loop mass).  [connected]
   decides whether a successor is weakly connected; partitioned successors
   are folded into the self-loop. *)
let transitions_with ~connected p (state : state) =
  let s = float_of_int p.view_size in
  let pair_denominator = s *. (s -. 1.) in
  let successors = Hashtbl.create 32 in
  let add st prob =
    if prob > 0. then
      Hashtbl.replace successors st
        (prob +. Option.value ~default:0. (Hashtbl.find_opt successors st))
  in
  let state_array = Array.of_list state in
  let per_initiator = 1. /. float_of_int p.n in
  Array.iteri
    (fun u view ->
      let d = List.length view in
      (* Probability that the two selected slots are both non-empty and hold
         (target = a, forwarded = b), summed over slot choices. *)
      let distinct_ids = List.sort_uniq compare view in
      let nonempty_pair_mass = ref 0. in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let ca = count_id a view and cb = count_id b view in
              let ways =
                if a = b then float_of_int (ca * (ca - 1)) else float_of_int (ca * cb)
              in
              let p_select = ways /. pair_denominator in
              if p_select > 0. then begin
                nonempty_pair_mass := !nonempty_pair_mass +. p_select;
                let duplicated = d <= p.lower_threshold in
                let sender_view =
                  if duplicated then view else remove_one a (remove_one b view)
                in
                let with_sender =
                  Array.mapi (fun i w -> if i = u then sender_view else w) state_array
                in
                (* Loss branch: the message vanishes. *)
                let lost_state = Array.to_list with_sender in
                add lost_state (per_initiator *. p_select *. p.loss);
                (* Delivery branch: receiver a installs [u; b] or deletes. *)
                let recv_view = with_sender.(a) in
                let delivered_state =
                  if List.length recv_view <= p.view_size - 2 then begin
                    let recv_view' = insert_sorted u (insert_sorted b recv_view) in
                    Array.to_list
                      (Array.mapi
                         (fun i w -> if i = a then recv_view' else w)
                         with_sender)
                  end
                  else Array.to_list with_sender (* full view: deletion *)
                in
                add delivered_state (per_initiator *. p_select *. (1. -. p.loss))
              end)
            distinct_ids)
        distinct_ids;
      (* Self-loop from selections touching an empty slot. *)
      add state (per_initiator *. (1. -. !nonempty_pair_mass)))
    state_array;
  (* Redirect transitions into partitioned states to self-loops (paper,
     section 7.1).  [connected] memoizes the connectivity predicate — BFS
     exploration reaches the same successor states many times. *)
  Hashtbl.fold
    (fun st prob acc ->
      if st = state then (state, prob) :: acc
      else if connected st then (st, prob) :: acc
      else (state, prob) :: acc)
    successors []

let transitions p state =
  transitions_with ~connected:(is_weakly_connected_state ~n:p.n) p state

(* --- Exploration --- *)

type result = {
  params : params;
  states : state array;
  chain : Sf_markov.Chain.t;
  stationary : float array;
  is_ergodic : bool;
  stationary_max_min_ratio : float;
  (* edge_probability.(u).(v) = P(v in u.lv) under the stationary
     distribution, counting presence (not multiplicity). *)
  edge_probability : float array array;
  mean_entries : float;           (* expected total non-empty entries *)
  self_edge_fraction : float;     (* expected self-edge share of entries *)
  parallel_fraction : float;      (* expected parallel-surplus share *)
}

exception Too_many_states of int

let explore ?(max_states = 500_000) p ~initial =
  if List.length initial <> p.n then invalid_arg "Global_mc.explore: bad initial state";
  List.iter
    (fun view ->
      if List.length view > p.view_size then
        invalid_arg "Global_mc.explore: initial view too large";
      List.iter
        (fun v ->
          if v < 0 || v >= p.n then invalid_arg "Global_mc.explore: bad id in view")
        view)
    initial;
  let initial = List.map (List.sort compare) initial in
  if not (is_weakly_connected_state ~n:p.n initial) then
    invalid_arg "Global_mc.explore: initial state not weakly connected";
  (* BFS over reachable states. *)
  let index = Hashtbl.create 4096 in
  let states = ref [] in
  let count = ref 0 in
  let edges = ref [] in
  let queue = Queue.create () in
  let intern st =
    match Hashtbl.find_opt index st with
    | Some i -> i
    | None ->
      let i = !count in
      if i >= max_states then raise (Too_many_states i);
      Hashtbl.replace index st i;
      states := st :: !states;
      incr count;
      Queue.push (st, i) queue;
      i
  in
  let connectivity_cache = Hashtbl.create 4096 in
  let connected st =
    match Hashtbl.find_opt connectivity_cache st with
    | Some b -> b
    | None ->
      let b = is_weakly_connected_state ~n:p.n st in
      Hashtbl.replace connectivity_cache st b;
      b
  in
  ignore (intern initial);
  while not (Queue.is_empty queue) do
    let st, i = Queue.pop queue in
    List.iter
      (fun (st', prob) ->
        let j = intern st' in
        edges := (i, j, prob) :: !edges)
      (transitions_with ~connected p st)
  done;
  let states = Array.of_list (List.rev !states) in
  let chain = Sf_markov.Chain.of_weighted_edges ~size:(Array.length states) !edges in
  let is_ergodic = Sf_markov.Chain.is_ergodic chain in
  let { Sf_markov.Chain.distribution = stationary; _ } =
    Sf_markov.Chain.stationary ~tolerance:1e-13 chain
  in
  let ratio =
    let mx = Array.fold_left Float.max neg_infinity stationary in
    let mn = Array.fold_left Float.min infinity stationary in
    if mn <= 0. then infinity else mx /. mn
  in
  (* Stationary-averaged edge probabilities and dependence fractions. *)
  let edge_probability = Array.make_matrix p.n p.n 0. in
  let mean_entries = ref 0. in
  let self_edges = ref 0. in
  let parallel = ref 0. in
  Array.iteri
    (fun i st ->
      let w = stationary.(i) in
      List.iteri
        (fun u view ->
          mean_entries := !mean_entries +. (w *. float_of_int (List.length view));
          self_edges := !self_edges +. (w *. float_of_int (count_id u view));
          let distinct = List.sort_uniq compare view in
          List.iter
            (fun v ->
              edge_probability.(u).(v) <- edge_probability.(u).(v) +. w;
              let c = count_id v view in
              if c > 1 then parallel := !parallel +. (w *. float_of_int (c - 1)))
            distinct)
        st)
    states;
  {
    params = p;
    states;
    chain;
    stationary;
    is_ergodic;
    stationary_max_min_ratio = ratio;
    edge_probability;
    mean_entries = !mean_entries;
    self_edge_fraction = (if !mean_entries > 0. then !self_edges /. !mean_entries else 0.);
    parallel_fraction = (if !mean_entries > 0. then !parallel /. !mean_entries else 0.);
  }

(* Lemma 7.5 refined.  On the exact chain, the stationary distribution is
   uniform over membership graphs with *distinguishable* id instances: the
   probability of a multigraph is proportional to the number of distinct
   orderings of its edge multiset, i.e. 1 / prod_(u,v) m_uv! up to the
   global factor.  (The paper's Lemma 7.5 counts transformations per slot
   pair, which is exactly instance-labeled counting; projecting onto
   unlabeled multigraphs weights each state by its realization count.)
   [labeled_uniformity_ratio] is max/min over states of
   pi(G) * prod m_uv! — exactly 1 when the refined law holds. *)
let multiplicity_correction (st : state) =
  let factorial k =
    let rec go acc k = if k <= 1 then acc else go (acc *. float_of_int k) (k - 1) in
    go 1. k
  in
  List.fold_left
    (fun acc view ->
      let distinct = List.sort_uniq compare view in
      List.fold_left (fun acc v -> acc *. factorial (count_id v view)) acc distinct)
    1. st

let labeled_uniformity_ratio result =
  let mx = ref neg_infinity and mn = ref infinity in
  Array.iteri
    (fun i st ->
      let x = result.stationary.(i) *. multiplicity_correction st in
      if x > !mx then mx := x;
      if x < !mn then mn := x)
    result.states;
  if !mn <= 0. then infinity else !mx /. !mn

(* Spread of off-diagonal edge probabilities: max/min over u <> v — Lemma
   7.6 predicts a ratio of 1 (exact uniformity). *)
let edge_probability_spread result =
  let n = result.params.n in
  let mx = ref neg_infinity and mn = ref infinity in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let x = result.edge_probability.(u).(v) in
        if x > !mx then mx := x;
        if x < !mn then mn := x
      end
    done
  done;
  if !mn <= 0. then infinity else !mx /. !mn
