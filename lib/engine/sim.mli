(** Discrete-event simulation core: virtual clock + event queue of thunks. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

val executed_events : t -> int

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Schedule a thunk [delay] after the current time. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit

val stop : t -> unit
(** Request the run loop to stop after the current event. *)

val set_monitor : t -> (unit -> unit) option -> unit
(** Install (or clear) a hook that runs after every executed event — the
    attachment point for runtime audits such as [Sf_check.Invariant]. *)

val set_span : t -> Sf_obs.Span.t option -> unit
(** Install (or clear) a profiling span: every event execution is timed
    into the span's histogram using the span's own clock. *)

val pending : t -> int
(** Number of queued events. *)

type outcome = Drained | Reached_horizon | Budget_exhausted | Stopped

val run : ?horizon:float -> ?max_events:int -> t -> outcome
(** Execute events in time order until the queue drains, the next event lies
    beyond [horizon], [max_events] have run, or {!stop} is called. *)
