(* SCALE: the million-node ladder over the sharded flat-state runner
   (ROADMAP item 1).

   Three legs — n = 10^4, 10^5, 10^6 — each running bulk-synchronous
   rounds on Runner.Sharded and reporting actions/second plus the
   process's peak RSS.  The 10k leg additionally:

   - replays itself under the strict invariant audit (edge ledger every
     round, full structural scan periodically) on a fresh world, and
   - re-runs on 2 domains and asserts bit-for-bit equality with the
     1-domain world (Runner.Sharded.equal) — the determinism contract of
     the sharded engine, checked in anger.

   The whole ladder folds into BENCH_scale.json (one object per leg).
   [run ~smoke:true] is the CI gate: the 10k leg only, with both checks,
   well under a minute.  The full ladder is the artifact behind the
   committed BENCH_scale.json. *)

module Sharded = Sf_core.Runner.Sharded
module Protocol = Sf_core.Protocol
module Census = Sf_core.Census
module Invariant = Sf_check.Invariant
module Json = Sf_obs.Json

let seed = 42
let loss = 0.05
let shards = 16

(* Small view: at n = 10^6, each of ids/serials/anchors/born is
   n * s ints — s = 16 keeps the store at ~512 MB of unboxed arrays. *)
let config = Protocol.make_config ~view_size:16 ~lower_threshold:4

let make n = Sharded.create ~shards ~loss_rate:loss ~seed ~n ~config ()

type leg = {
  n : int;
  rounds : int;
  domains : int;
  seconds : float;
  actions : int;
  peak_rss_kb : int option;
  mean_degree : float;
  alpha : float;
  audited : bool;
  audit_violations : int;
  identity_checked : bool;
  identity_ok : bool;
}

let actions_per_sec leg =
  if leg.seconds > 0. then float_of_int leg.actions /. leg.seconds else 0.

(* One timed leg: fresh world, [rounds] rounds, no audit in the timed
   region (the audit's per-round scans would dominate at 10^6). *)
let timed_leg ~n ~rounds ~domains ~audit =
  let audited, audit_violations, identity_checked, identity_ok =
    if not audit then (false, 0, false, false)
    else begin
      (* Strict audit on its own world: any violation raises. *)
      let w = make n in
      let stats = Invariant.audited_sharded_run ~scan_every:10 w ~rounds in
      (* Domain-count invariance: 1 domain vs 2 domains, same seed. *)
      let a = make n and b = make n in
      Sharded.run_rounds a ~domains:1 rounds;
      Sharded.run_rounds b ~domains:2 rounds;
      (true, stats.Invariant.violation_count, true, Sharded.equal a b)
    end
  in
  let w = make n in
  let elapsed = Sf_obs.Clock.stopwatch ~clock:Sf_obs.Clock.wall in
  Sharded.run_rounds w ~domains rounds;
  let seconds = elapsed () in
  let counters = Sharded.world_counters w in
  let census = Census.of_flat (Sharded.store w) in
  let leg =
    {
      n;
      rounds;
      domains;
      seconds;
      actions = counters.Sf_core.Runner.actions;
      peak_rss_kb = Sf_obs.Clock.peak_rss_kb ();
      mean_degree =
        float_of_int (Sharded.total_edges w) /. float_of_int n;
      alpha = census.Census.alpha;
      audited;
      audit_violations;
      identity_checked;
      identity_ok;
    }
  in
  Output.row "  n=%7d  rounds=%2d  %6.2fs  %10.0f actions/s  d=%5.2f  alpha=%.3f%s@."
    n rounds seconds (actions_per_sec leg) leg.mean_degree leg.alpha
    (match leg.peak_rss_kb with
    | Some kb -> Fmt.str "  rss=%dMB" (kb / 1024)
    | None -> "");
  if audit then begin
    Output.check (Fmt.str "strict audit clean over %d rounds" rounds)
      (audit_violations = 0);
    Output.check "2-domain run bit-identical to 1-domain run" identity_ok
  end;
  leg

let json_of_leg leg =
  Json.Obj
    [
      ("n", Json.Int leg.n);
      ("rounds", Json.Int leg.rounds);
      ("domains", Json.Int leg.domains);
      ("shards", Json.Int shards);
      ("loss", Json.Float loss);
      ("seconds", Json.Float leg.seconds);
      ("actions", Json.Int leg.actions);
      ("actions_per_sec", Json.Float (actions_per_sec leg));
      ( "peak_rss_kb",
        match leg.peak_rss_kb with Some kb -> Json.Int kb | None -> Json.Null );
      ("mean_degree", Json.Float leg.mean_degree);
      ("alpha", Json.Float leg.alpha);
      ("audited", Json.Bool leg.audited);
      ("audit_violations", Json.Int leg.audit_violations);
      ("identity_checked", Json.Bool leg.identity_checked);
      ("identity_ok", Json.Bool leg.identity_ok);
    ]

let run ~smoke () =
  Output.section
    (if smoke then "SCALE10" else "SCALE")
    "Million-node ladder on the sharded flat-state runner";
  Output.row "  s=%d dL=%d shards=%d loss=%.2f seed=%d@."
    config.Protocol.view_size config.Protocol.lower_threshold shards loss seed;
  let domains = max 1 (min shards (Domain.recommended_domain_count ())) in
  (* Ascending n, sequenced explicitly: peak RSS is the process's monotone
     high-water mark, so each leg's reading must not inherit a larger
     earlier world (and list literals evaluate right to left). *)
  let legs =
    if smoke then [ timed_leg ~n:10_000 ~rounds:30 ~domains ~audit:true ]
    else begin
      let small = timed_leg ~n:10_000 ~rounds:30 ~domains ~audit:true in
      let mid = timed_leg ~n:100_000 ~rounds:10 ~domains ~audit:false in
      let big = timed_leg ~n:1_000_000 ~rounds:5 ~domains ~audit:false in
      [ small; mid; big ]
    end
  in
  let failed =
    List.exists
      (fun l -> l.audit_violations > 0 || (l.identity_checked && not l.identity_ok))
      legs
  in
  if failed then failwith "SCALE: audit or determinism check failed";
  Json.Obj
    [
      ("config",
       Json.Obj
         [
           ("view_size", Json.Int config.Protocol.view_size);
           ("lower_threshold", Json.Int config.Protocol.lower_threshold);
           ("shards", Json.Int shards);
           ("loss", Json.Float loss);
           ("seed", Json.Int seed);
           ("domains", Json.Int domains);
         ]);
      ("legs", Json.List (List.map json_of_leg legs));
    ]
