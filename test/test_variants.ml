(* Tests for the section 5 optimization variants. *)

module Variants = Sf_core.Variants
module Topology = Sf_core.Topology
module Census = Sf_core.Census

let make ?(seed = 77) ?(n = 150) ?(loss = 0.05) options =
  let rng = Sf_prng.Rng.create (seed + 3) in
  let topology = Topology.regular rng ~n ~out_degree:8 in
  Variants.create ~seed ~n ~view_size:16 ~lower_threshold:6 ~loss_rate:loss ~options
    ~topology

let test_standard_variant_behaves_like_sandf () =
  let v = make ~loss:0.05 Variants.standard in
  Variants.run_rounds v 150;
  let outs = Variants.outdegree_summary v in
  let k = Variants.counters v in
  (* Duplication compensates loss (Lemma 6.6 regime). *)
  let dup_rate = float_of_int k.Variants.duplications /. float_of_int k.Variants.sends in
  let loss_rate = float_of_int k.Variants.losses /. float_of_int k.Variants.sends in
  Alcotest.(check bool)
    (Printf.sprintf "dup %.3f near loss %.3f" dup_rate loss_rate)
    true
    (Float.abs (dup_rate -. loss_rate) < 0.03);
  Alcotest.(check bool) "degrees above threshold" true (Sf_stats.Summary.mean outs > 6.);
  Alcotest.(check int) "no undeletions in standard mode" 0 k.Variants.undeletions;
  Alcotest.(check bool) "connected" true (Variants.is_weakly_connected v)

let test_mark_and_undelete_reduces_dependence () =
  let standard = make ~seed:78 Variants.standard in
  let marked = make ~seed:78 { Variants.standard with mark_and_undelete = true } in
  Variants.run_rounds standard 150;
  Variants.run_rounds marked 150;
  let a = (Variants.independence_census standard).Census.alpha in
  let b = (Variants.independence_census marked).Census.alpha in
  Alcotest.(check bool)
    (Printf.sprintf "alpha standard %.3f < mark-undelete %.3f" a b)
    true (b > a);
  let k = Variants.counters marked in
  Alcotest.(check bool) "undeletions used" true (k.Variants.undeletions > 0)

let test_replace_when_full_eliminates_deletions () =
  let v = make { Variants.standard with replace_when_full = true } in
  Variants.run_rounds v 150;
  let k = Variants.counters v in
  Alcotest.(check int) "no deletions" 0 k.Variants.deletions

let test_batching_reduces_message_count () =
  let single = make ~seed:79 Variants.standard in
  let batched = make ~seed:79 { Variants.standard with batch = 3 } in
  Variants.run_rounds single 100;
  Variants.run_rounds batched 100;
  let k1 = Variants.counters single and k3 = Variants.counters batched in
  (* Batched actions fire less often (they need 4 non-empty slots) but move
     more ids per message; the system must stay connected either way. *)
  Alcotest.(check bool) "batched sends fewer messages" true
    (k3.Variants.sends < k1.Variants.sends);
  Alcotest.(check bool) "batched connected" true (Variants.is_weakly_connected batched)

let test_batch_validation () =
  Alcotest.check_raises "batch 0 rejected"
    (Invalid_argument "Variants.create: batch must be >= 1") (fun () ->
      ignore (make { Variants.standard with batch = 0 }))

let test_mark_and_undelete_survives_heavy_loss () =
  let v = make ~loss:0.15 { Variants.standard with mark_and_undelete = true } in
  Variants.run_rounds v 200;
  let outs = Variants.outdegree_summary v in
  Alcotest.(check bool) "degrees survive heavy loss" true
    (Sf_stats.Summary.mean outs >= 6.);
  Alcotest.(check bool) "connected" true (Variants.is_weakly_connected v)

let suite =
  [
    Alcotest.test_case "standard variant = S&F regime" `Quick test_standard_variant_behaves_like_sandf;
    Alcotest.test_case "mark-and-undelete dependence" `Quick test_mark_and_undelete_reduces_dependence;
    Alcotest.test_case "replace-when-full" `Quick test_replace_when_full_eliminates_deletions;
    Alcotest.test_case "batching" `Quick test_batching_reduces_message_count;
    Alcotest.test_case "batch validation" `Quick test_batch_validation;
    Alcotest.test_case "mark-and-undelete heavy loss" `Quick test_mark_and_undelete_survives_heavy_loss;
  ]
