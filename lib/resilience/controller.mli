(** Adaptive (dL, s) retuning against an online loss estimate.

    Re-solves the paper's section 6.3 threshold rule — injected as a
    [solve] callback, normally {!Sf_analysis.Thresholds.select_lossy} —
    whenever the loss estimate drifts, and walks the live thresholds
    toward the solution under three anti-thrash guards: a hysteresis band
    on the estimate, a cooldown between retunes, and a per-retune step
    budget with hard [min,max] windows.  Emits target pairs only; drivers
    apply them per node.  Consumes no randomness. *)

type limits = {
  min_lower : int;  (** floor for dL (even, >= 0) *)
  max_lower : int;  (** ceiling for dL (even) *)
  min_view : int;   (** floor for s (even, >= 6) *)
  max_view : int;   (** ceiling for s — at most the allocated view capacity *)
}

type t

val create :
  ?hysteresis:float ->  (* min estimate drift before acting (default 0.02) *)
  ?cooldown:int ->      (* min decision ticks between retunes (default 10) *)
  ?max_step:int ->      (* max slots moved per retune, even (default 4) *)
  solve:(loss:float -> int * int) ->
  limits:limits ->
  initial:(int * int) ->  (* the (dL, s) the system is running with *)
  unit ->
  t
(** Raises [Invalid_argument] on odd/misordered limits, an odd initial
    pair, an odd or too-small step, or negative hysteresis/cooldown. *)

val decide : t -> loss:float -> (int * int) option
(** One decision tick.  [Some (dL', s')] directs a retune (already
    recorded as current); [None] keeps the running pair — because the
    estimate sits inside the hysteresis band of the last solve, the
    cooldown has not elapsed, or the budgeted step goes nowhere.  The
    result always satisfies the even / [0 <= dL <= s - 6] protocol
    constraints given valid limits. *)

val current : t -> int * int
(** The pair the controller believes is live. *)

val retunes : t -> int
(** Retunes directed so far. *)

val anchor_loss : t -> float
(** The loss estimate the current pair was last solved against. *)
